#include "foresight/report.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "common/str.hpp"

namespace cosmo::foresight {

namespace {

std::string result_key(const CBenchResult& r) {
  return r.field + "|" + r.compressor + "|" + r.config.label();
}

std::string lookup(const std::map<std::string, double>& m, const std::string& key,
                   const char* fmt) {
  const auto it = m.find(key);
  return it == m.end() ? std::string("-") : strprintf(fmt, it->second);
}

}  // namespace

std::string render_markdown_report(const std::vector<CBenchResult>& results,
                                   const std::map<std::string, double>& pk_deviation,
                                   const std::map<std::string, double>& halo_deviation,
                                   const std::map<std::string, double>& ssim,
                                   const ReportOptions& options) {
  std::string md = "# " + options.title + "\n\n";
  if (results.empty()) {
    md += "No results.\n";
    return md;
  }

  // Summary header.
  std::set<std::string> codecs, fields;
  for (const auto& r : results) {
    codecs.insert(r.compressor);
    fields.insert(r.field);
  }
  std::size_t failed = 0;
  std::size_t fallbacks = 0;
  std::size_t retried = 0;
  for (const auto& r : results) {
    if (r.status != "ok") ++failed;
    if (r.cpu_fallback()) ++fallbacks;
    if (r.device_attempts() > 1) ++retried;
  }
  md += strprintf("- runs: **%zu** (%zu fields x %zu compressors)\n", results.size(),
                  fields.size(), codecs.size());
  if (failed > 0) md += strprintf("- failed runs: **%zu** (marked below)\n", failed);
  if (fallbacks > 0) {
    md += strprintf("- host fallbacks: **%zu** (device-OOM degraded to the CPU codec)\n",
                    fallbacks);
  }
  if (retried > 0) {
    md += strprintf("- runs with device retries: **%zu**\n", retried);
  }
  md += strprintf("- dataset: %s\n", results.front().dataset.c_str());
  md += strprintf("- power-spectrum acceptance band: 1 ± %.0f%%\n\n",
                  options.pk_tolerance * 100.0);

  // One table per codec. The flags column surfaces host fallbacks and
  // device retries (see result_flags); FAILED rows carry the error text.
  for (const auto& codec : codecs) {
    md += "## " + codec + "\n\n";
    md += "| field | config | ratio | bits/value | PSNR (dB) | pk dev | halo dev | SSIM "
          "| flags |\n";
    md += "|---|---|---|---|---|---|---|---|---|\n";
    for (const auto& r : results) {
      if (r.compressor != codec) continue;
      if (r.status != "ok") {
        md += strprintf("| %s | %s | FAILED | - | - | - | - | - | %s |\n",
                        r.field.c_str(), r.config.label().c_str(),
                        r.error.empty() ? "failed" : r.error.c_str());
        continue;
      }
      const std::string key = result_key(r);
      const auto pk_it = pk_deviation.find(key);
      std::string pk_cell = "-";
      if (pk_it != pk_deviation.end()) {
        pk_cell = strprintf("%.4f %s", pk_it->second,
                            pk_it->second <= options.pk_tolerance ? "OK" : "reject");
      }
      // Halo deviations are keyed by the pseudo-field "position".
      const std::string halo_cell =
          lookup(halo_deviation, "position|" + codec + "|" + r.config.label(), "%.4f");
      md += strprintf("| %s | %s | %.2fx | %.3f | %.2f | %s | %s | %s | %s |\n",
                      r.field.c_str(), r.config.label().c_str(), r.ratio, r.bit_rate,
                      r.distortion.psnr_db, pk_cell.c_str(), halo_cell.c_str(),
                      lookup(ssim, key, "%.4f").c_str(), result_flags(r).c_str());
    }
    md += "\n";
  }

  // Best-fit picks (guideline step 3): per field, highest ratio whose pk
  // deviation (when known) is within tolerance.
  md += "## Best-fit picks (Section V-D guideline)\n\n";
  for (const auto& field : fields) {
    const CBenchResult* best = nullptr;
    for (const auto& r : results) {
      if (r.field != field) continue;
      if (r.status != "ok") continue;  // failed rows can't be picked
      const auto pk_it = pk_deviation.find(result_key(r));
      if (pk_it != pk_deviation.end() && pk_it->second > options.pk_tolerance) continue;
      if (!best || r.ratio > best->ratio) best = &r;
    }
    if (best) {
      md += strprintf("- **%s** -> %s `%s` (%.2fx)\n", field.c_str(),
                      best->compressor.c_str(), best->config.label().c_str(), best->ratio);
    } else {
      md += strprintf("- **%s** -> no acceptable configuration evaluated\n", field.c_str());
    }
  }
  md += "\nThroughput rows marked N/A follow the paper's treatment of the "
        "GPU-SZ prototype (unoptimized memory layout).\n";
  return md;
}

std::string render_markdown_report(const PipelineSummary& summary,
                                   const ReportOptions& options) {
  return render_markdown_report(summary.results, summary.pk_deviation,
                                summary.halo_deviation, summary.ssim, options);
}

void write_markdown_report(const PipelineSummary& summary, const std::string& path,
                           const ReportOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("report: cannot write " + path);
  out << render_markdown_report(summary, options);
}

}  // namespace cosmo::foresight
