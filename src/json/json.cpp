#include "json/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/str.hpp"

namespace cosmo::json {

bool Value::as_bool() const {
  require_format(is_bool(), "json: expected bool");
  return std::get<bool>(v_);
}

double Value::as_number() const {
  require_format(is_number(), "json: expected number");
  return std::get<double>(v_);
}

long Value::as_int() const { return static_cast<long>(as_number()); }

const std::string& Value::as_string() const {
  require_format(is_string(), "json: expected string");
  return std::get<std::string>(v_);
}

const Array& Value::as_array() const {
  require_format(is_array(), "json: expected array");
  return std::get<Array>(v_);
}

const Object& Value::as_object() const {
  require_format(is_object(), "json: expected object");
  return std::get<Object>(v_);
}

Array& Value::as_array() {
  require_format(is_array(), "json: expected array");
  return std::get<Array>(v_);
}

Object& Value::as_object() {
  require_format(is_object(), "json: expected object");
  return std::get<Object>(v_);
}

const Value& Value::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  require_format(it != obj.end(), "json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

double Value::get(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::string Value::get(const std::string& key, const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Value::get(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string format_number(double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    return strprintf("%.0f", d);
  }
  // %.17g round-trips doubles; trim to the shortest representation that does.
  for (int prec = 6; prec <= 17; ++prec) {
    std::string s = strprintf("%.*g", prec, d);
    if (std::strtod(s.c_str(), nullptr) == d) return s;
  }
  return strprintf("%.17g", d);
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ') : "";
  const std::string pad_close = indent > 0 ? std::string(static_cast<std::size_t>(indent) * depth, ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    out += format_number(as_number());
  } else if (is_string()) {
    out += '"';
    out += escape(as_string());
    out += '"';
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_to(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [k, v] : obj) {
      out += pad;
      out += '"';
      out += escape(k);
      out += "\":";
      if (indent > 0) out += ' ';
      v.dump_to(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += '}';
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string view with offset tracking.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    require_format(pos_ == s_.size(), err("trailing characters after JSON value"));
    return v;
  }

 private:
  [[nodiscard]] std::string err(const std::string& msg) const {
    return strprintf("json parse error at offset %zu: %s", pos_, msg.c_str());
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    require_format(pos_ < s_.size(), err("unexpected end of input"));
    return s_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    require_format(next() == c, err(std::string("expected '") + c + "'"));
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        require_format(consume_literal("true"), err("bad literal"));
        return Value(true);
      case 'f':
        require_format(consume_literal("false"), err("bad literal"));
        return Value(false);
      case 'n':
        require_format(consume_literal("null"), err("bad literal"));
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      require_format(peek() == '"', err("expected object key string"));
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') return Value(std::move(obj));
      require_format(c == ',', err("expected ',' or '}' in object"));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return Value(std::move(arr));
      require_format(c == ',', err("expected ',' or ']' in array"));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      require_format(pos_ < s_.size(), err("unterminated string"));
      // Bulk-copy the run up to the next quote or backslash: multi-megabyte
      // payload strings (base64 chunks) would otherwise be appended a byte
      // at a time.
      const std::size_t run_end = s_.find_first_of("\"\\", pos_);
      require_format(run_end != std::string::npos, err("unterminated string"));
      if (run_end > pos_) {
        out.append(s_, pos_, run_end - pos_);
        pos_ = run_end;
      }
      const char c = s_[pos_++];
      if (c == '"') return out;
      require_format(pos_ < s_.size(), err("unterminated escape"));
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          require_format(pos_ + 4 <= s_.size(), err("bad \\u escape"));
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else require_format(false, err("bad hex digit in \\u escape"));
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs are
          // passed through as two separate 3-byte sequences).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: require_format(false, err("bad escape character"));
      }
    }
  }

  Value parse_number() {
    const std::size_t begin = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    require_format(pos_ > begin, err("expected a value"));
    const std::string tok = s_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    require_format(end == tok.c_str() + tok.size(), err("malformed number '" + tok + "'"));
    return Value(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("json: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace cosmo::json
