/// \file json.hpp
/// \brief Minimal JSON value model, parser and serializer.
///
/// Foresight pipelines are configured "by only configuring a simple JSON
/// file" (paper Section IV-A); this module provides the required JSON
/// support with no external dependency. Full RFC 8259 value model; numbers
/// are stored as double.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace cosmo::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps deterministic key order for serialization and tests.
using Object = std::map<std::string, Value>;

/// A JSON value: null, bool, number (double), string, array or object.
class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(long i) : v_(static_cast<double>(i)) {}
  Value(std::size_t i) : v_(static_cast<double>(i)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw FormatError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] long as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object member access; at() throws when missing, get() returns fallback.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] bool get(const std::string& key, bool fallback) const;

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  bool operator==(const Value&) const = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses a complete JSON document; throws FormatError with offset info on
/// malformed input. Trailing non-whitespace is rejected.
Value parse(const std::string& text);

/// Reads and parses a JSON file; throws IoError / FormatError.
Value parse_file(const std::string& path);

/// Escapes a string per JSON rules (used by the Cinema CSV/HTML emitters too).
std::string escape(const std::string& s);

}  // namespace cosmo::json
