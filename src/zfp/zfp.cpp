#include "zfp/zfp.hpp"

#include <algorithm>
#include <array>
#include <climits>
#include <cmath>
#include <cstring>

#include "common/telemetry.hpp"
#include "zfp/block_codec.hpp"

namespace cosmo::zfp {

namespace {

constexpr std::uint32_t kMagic = 0x5A465031;  // "ZFP1"
constexpr unsigned kMinBlockBits = 12;        // flag (1) + exponent (10) + >= 1 payload bit

std::size_t block_count_1d(std::size_t n) { return (n + 3) / 4; }

std::size_t block_values(int rank) { return rank == 1 ? 4u : rank == 2 ? 16u : 64u; }

/// Gathers a 4^rank block at block coordinates (bx, by, bz); edge values are
/// replicated for partial blocks (ZFP's padding strategy keeps values in the
/// field's range so the aligned exponent is unaffected).
void gather(std::span<const float> data, const Dims& dims, int rank, std::size_t bx,
            std::size_t by, std::size_t bz, std::span<float> block) {
  const std::size_t ze = rank >= 3 ? 4 : 1;
  const std::size_t ye = rank >= 2 ? 4 : 1;
  std::size_t o = 0;
  for (std::size_t dz = 0; dz < ze; ++dz) {
    const std::size_t z = std::min(bz * 4 + dz, dims.nz - 1);
    for (std::size_t dy = 0; dy < ye; ++dy) {
      const std::size_t y = std::min(by * 4 + dy, dims.ny - 1);
      for (std::size_t dx = 0; dx < 4; ++dx) {
        const std::size_t x = std::min(bx * 4 + dx, dims.nx - 1);
        block[o++] = data[dims.index(x, y, z)];
      }
    }
  }
}

/// Writes a decoded block back, skipping padded lanes.
void scatter(std::span<float> data, const Dims& dims, int rank, std::size_t bx,
             std::size_t by, std::size_t bz, std::span<const float> block) {
  const std::size_t ze = rank >= 3 ? 4 : 1;
  const std::size_t ye = rank >= 2 ? 4 : 1;
  std::size_t o = 0;
  for (std::size_t dz = 0; dz < ze; ++dz) {
    const std::size_t z = bz * 4 + dz;
    for (std::size_t dy = 0; dy < ye; ++dy) {
      const std::size_t y = by * 4 + dy;
      for (std::size_t dx = 0; dx < 4; ++dx, ++o) {
        const std::size_t x = bx * 4 + dx;
        if (x < dims.nx && y < dims.ny && z < dims.nz) {
          data[dims.index(x, y, z)] = block[o];
        }
      }
    }
  }
}

template <typename Fn>
void for_each_block(const Dims& dims, int rank, Fn&& fn) {
  const std::size_t nbx = block_count_1d(dims.nx);
  const std::size_t nby = rank >= 2 ? block_count_1d(dims.ny) : 1;
  const std::size_t nbz = rank >= 3 ? block_count_1d(dims.nz) : 1;
  for (std::size_t bz = 0; bz < nbz; ++bz)
    for (std::size_t by = 0; by < nby; ++by)
      for (std::size_t bx = 0; bx < nbx; ++bx) fn(bx, by, bz);
}

/// Linear-index view of the block grid (same bz-outer / bx-inner order as
/// for_each_block) so block ranges can be partitioned across threads.
struct BlockGrid {
  std::size_t nbx, nby, nbz;

  BlockGrid(const Dims& dims, int rank)
      : nbx(block_count_1d(dims.nx)),
        nby(rank >= 2 ? block_count_1d(dims.ny) : 1),
        nbz(rank >= 3 ? block_count_1d(dims.nz) : 1) {}

  [[nodiscard]] std::size_t count() const { return nbx * nby * nbz; }

  void coords(std::size_t i, std::size_t& bx, std::size_t& by, std::size_t& bz) const {
    bx = i % nbx;
    by = (i / nbx) % nby;
    bz = i / (nbx * nby);
  }
};

/// Blocks per encode range: 512 4^3 blocks = 32K values, enough to amortize
/// task overhead while keeping ranges plentiful for load balancing.
constexpr std::size_t kBlocksPerRange = 512;

}  // namespace

unsigned block_bits_for_rate(double rate, int rank) {
  require(rate > 0.0 && rate <= 32.0, "zfp: rate must be in (0, 32]");
  const double bits = rate * static_cast<double>(block_values(rank));
  return std::max<unsigned>(kMinBlockBits, static_cast<unsigned>(std::lround(bits)));
}

std::vector<std::uint8_t> compress(std::span<const float> data, const Dims& dims,
                                   const Params& params, Stats* stats, ThreadPool* pool) {
  std::vector<std::uint8_t> out;
  compress_into(data, dims, params, out, stats, pool);
  return out;
}

void compress_into(std::span<const float> data, const Dims& dims, const Params& params,
                   std::vector<std::uint8_t>& out, Stats* stats, ThreadPool* pool) {
  require(data.size() == dims.count(), "zfp::compress: data/dims size mismatch");
  require(!data.empty(), "zfp::compress: empty input");
  const int rank = dims.rank();

  unsigned maxbits, maxprec;
  int minexp;
  if (params.mode == Mode::kFixedRate) {
    maxbits = block_bits_for_rate(params.rate, rank);
    maxprec = kIntPrec;
    minexp = INT_MIN;
  } else if (params.mode == Mode::kFixedAccuracy) {
    require(params.tolerance > 0.0, "zfp: tolerance must be positive");
    maxbits = 16u + 32u * static_cast<unsigned>(block_values(rank));  // effectively unbounded
    maxprec = kIntPrec;
    minexp = static_cast<int>(std::floor(std::log2(params.tolerance)));
  } else {
    require(params.precision >= 1 && params.precision <= kIntPrec,
            "zfp: precision must be in [1, 32]");
    maxbits = 16u + 32u * static_cast<unsigned>(block_values(rank));
    maxprec = params.precision;
    minexp = INT_MIN;
  }

  const BlockGrid grid(dims, rank);
  const std::size_t n_blocks = grid.count();
  TRACE_SPAN("zfp.block_scan.encode");
  BitWriter bw;
  if (pool != nullptr && n_blocks > kBlocksPerRange) {
    // Encode fixed block ranges into private writers, then concatenate in
    // range order: associativity makes the result bit-identical to the
    // serial single-writer stream for any thread count.
    const std::size_t n_ranges = (n_blocks + kBlocksPerRange - 1) / kBlocksPerRange;
    std::vector<BitWriter> parts(n_ranges);
    parallel_for(pool, n_ranges, [&](std::size_t lo, std::size_t hi) {
      std::vector<float> block(block_values(rank));
      for (std::size_t r = lo; r < hi; ++r) {
        BitWriter& part = parts[r];
        const std::size_t b0 = r * kBlocksPerRange;
        const std::size_t b1 = std::min(b0 + kBlocksPerRange, n_blocks);
        for (std::size_t b = b0; b < b1; ++b) {
          std::size_t bx, by, bz;
          grid.coords(b, bx, by, bz);
          gather(data, dims, rank, bx, by, bz, block);
          encode_block_float(part, block, rank, maxbits, maxprec, minexp,
                             params.mode == Mode::kFixedRate);
        }
      }
    }, /*min_grain=*/1);
    for (const auto& part : parts) bw.append(part);
  } else {
    std::vector<float> block(block_values(rank));
    for_each_block(dims, rank, [&](std::size_t bx, std::size_t by, std::size_t bz) {
      gather(data, dims, rank, bx, by, bz, block);
      encode_block_float(bw, block, rank, maxbits, maxprec, minexp,
                         params.mode == Mode::kFixedRate);
    });
  }
  const std::vector<std::uint8_t> payload = bw.finish();

  out.clear();
  auto u32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  u32(kMagic);
  out.push_back(static_cast<std::uint8_t>(params.mode));
  u64(dims.nx);
  u64(dims.ny);
  u64(dims.nz);
  u32(maxbits);
  {
    std::uint64_t bits;
    const double m2 = params.mode == Mode::kFixedRate        ? params.rate
                      : params.mode == Mode::kFixedAccuracy ? params.tolerance
                                                            : params.precision;
    std::memcpy(&bits, &m2, 8);
    u64(bits);
  }
  u64(payload.size());
  out.insert(out.end(), payload.begin(), payload.end());

  if (stats) {
    stats->total_points = data.size();
    stats->total_blocks = n_blocks;
    stats->compressed_bytes = out.size();
    stats->bit_rate = static_cast<double>(out.size()) * 8.0 / static_cast<double>(data.size());
  }
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes, Dims* out_dims,
                              ThreadPool* pool) {
  std::vector<float> out;
  decompress_into(bytes, out, out_dims, pool);
  return out;
}

void decompress_into(std::span<const std::uint8_t> bytes, std::vector<float>& out,
                     Dims* out_dims, ThreadPool* pool) {
  std::size_t pos = 0;
  auto u32 = [&bytes, &pos]() {
    require_format(pos + 4 <= bytes.size(), "zfp: truncated header");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    return v;
  };
  auto u64 = [&bytes, &pos]() {
    require_format(pos + 8 <= bytes.size(), "zfp: truncated header");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
    return v;
  };
  require_format(u32() == kMagic, "zfp: bad magic");
  require_format(pos < bytes.size(), "zfp: truncated header");
  require_format(bytes[pos] <= 2, "zfp: unknown mode byte");
  const Mode mode = static_cast<Mode>(bytes[pos++]);
  Dims dims;
  dims.nx = u64();
  dims.ny = u64();
  dims.nz = u64();
  const unsigned maxbits = u32();
  double mode_param;
  {
    const std::uint64_t bits = u64();
    std::memcpy(&mode_param, &bits, 8);
  }
  const std::size_t payload_len = u64();
  require_format(payload_len <= bytes.size() - pos, "zfp: truncated payload");

  const int rank = dims.rank();
  unsigned maxprec = kIntPrec;
  int minexp = INT_MIN;
  if (mode == Mode::kFixedAccuracy) {
    minexp = static_cast<int>(std::floor(std::log2(mode_param)));
  } else if (mode == Mode::kFixedPrecision) {
    maxprec = static_cast<unsigned>(mode_param);
    require_format(maxprec >= 1 && maxprec <= kIntPrec, "zfp: bad stored precision");
  }

  // Bound the output allocation by the payload actually present: every
  // encoded block spends at least one bit (the all-zero flag), so a stream
  // with fewer payload bits than blocks is corrupt. This also keeps the
  // fixed-rate seek below (lo * maxbits) far from overflow, together with
  // the maxbits range check — 16 + 32*64 is the largest value compress()
  // ever writes for any mode.
  const std::size_t count = checked_stream_count(dims, "zfp");
  require_format(maxbits >= 1 && maxbits <= 16u + 32u * 64u, "zfp: stored maxbits out of range");
  const BlockGrid grid(dims, rank);
  const std::size_t n_blocks = grid.count();
  require_format(n_blocks <= payload_len * 8, "zfp: block count exceeds payload");
  TRACE_SPAN("zfp.block_scan.decode");
  out.assign(count, 0.0f);
  if (mode == Mode::kFixedRate && pool != nullptr && n_blocks > kBlocksPerRange) {
    // Fixed-rate blocks all occupy exactly maxbits bits, so block b starts
    // at bit offset b * maxbits and ranges decode independently. Scatter
    // targets are disjoint per block.
    std::span<float> out_span(out);
    parallel_for(pool, n_blocks, [&](std::size_t lo, std::size_t hi) {
      BitReader range_br(bytes.data() + pos, payload_len);
      range_br.seek(static_cast<std::uint64_t>(lo) * maxbits);
      std::vector<float> block(block_values(rank));
      for (std::size_t b = lo; b < hi; ++b) {
        std::size_t bx, by, bz;
        grid.coords(b, bx, by, bz);
        decode_block_float(range_br, block, rank, maxbits, maxprec, minexp, true);
        scatter(out_span, dims, rank, bx, by, bz, block);
      }
    }, /*min_grain=*/kBlocksPerRange);
  } else {
    BitReader br(bytes.data() + pos, payload_len);
    std::vector<float> block(block_values(rank));
    for_each_block(dims, rank, [&](std::size_t bx, std::size_t by, std::size_t bz) {
      decode_block_float(br, block, rank, maxbits, maxprec, minexp,
                         mode == Mode::kFixedRate);
      scatter(out, dims, rank, bx, by, bz, block);
    });
  }
  if (out_dims) *out_dims = dims;
}

}  // namespace cosmo::zfp
