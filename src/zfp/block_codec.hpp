/// \file block_codec.hpp
/// \brief ZFP 4^d block codec: exponent alignment, decorrelating lifting
/// transform, negabinary conversion, and embedded bit-plane coding.
///
/// Follows the published ZFP algorithm (Lindstrom 2014, paper ref [12]):
/// each 4, 4x4 or 4x4x4 block of floats is aligned to a common exponent,
/// converted to 32-bit fixed point, decorrelated with the non-orthogonal
/// lifted transform, reordered by total sequency, mapped to negabinary and
/// coded one bit plane at a time with group-testing run-length codes. The
/// bit budget per block (fixed-rate mode) or the bit-plane cutoff
/// (fixed-accuracy mode) truncates the embedded stream.
#pragma once

#include <cstdint>
#include <span>

#include "codec/bitstream.hpp"

namespace cosmo::zfp {

/// Fixed-point significand type (two's complement) used inside blocks.
using Int = std::int32_t;
using UInt = std::uint32_t;

/// Bits in the fixed-point representation.
constexpr unsigned kIntPrec = 32;

/// Lifted decorrelating transform over 4 values at stride \p s (in place).
void fwd_lift(Int* p, std::size_t s);

/// Inverse of fwd_lift.
void inv_lift(Int* p, std::size_t s);

/// Two's complement -> negabinary.
UInt int2uint(Int x);

/// Negabinary -> two's complement.
Int uint2int(UInt x);

/// Total-sequency permutation for a 4^rank block: perm[i] gives the linear
/// index (within the block) of the i-th coefficient in coding order.
std::span<const std::uint16_t> sequency_permutation(int rank);

/// Encodes \p size negabinary integers with the embedded bit-plane coder,
/// spending at most \p maxbits bits and coding at most \p maxprec planes.
/// Returns the number of bits written.
unsigned encode_ints(BitWriter& bw, unsigned maxbits, unsigned maxprec,
                     std::span<const UInt> data);

/// Mirror of encode_ints(); reads at most \p maxbits bits. Returns bits read.
unsigned decode_ints(BitReader& br, unsigned maxbits, unsigned maxprec,
                     std::span<UInt> data);

/// Per-block float coding. \p block holds 4^rank values in row-major order.
/// Returns bits written (always padded to exactly \p maxbits when
/// \p pad_to_maxbits is set, as fixed-rate mode requires).
unsigned encode_block_float(BitWriter& bw, std::span<const float> block, int rank,
                            unsigned maxbits, unsigned maxprec, int minexp,
                            bool pad_to_maxbits);

/// Mirror of encode_block_float().
unsigned decode_block_float(BitReader& br, std::span<float> block, int rank,
                            unsigned maxbits, unsigned maxprec, int minexp,
                            bool skip_to_maxbits);

/// Number of bit planes kept for a block with maximum exponent \p emax in
/// fixed-accuracy mode (ZFP's precision() helper).
unsigned precision_for(int emax, unsigned maxprec, int minexp, int rank);

}  // namespace cosmo::zfp
