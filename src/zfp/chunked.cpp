#include "zfp/chunked.hpp"

#include <algorithm>
#include <cstring>
#include <future>

namespace cosmo::zfp {

namespace {

constexpr std::uint32_t kMagic = 0x5A46504B;  // "ZFPK"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t& pos) {
  require_format(4 <= b.size() - pos, "zfp-chunked: truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[pos++]) << (8 * i);
  return v;
}
std::uint64_t get_u64(std::span<const std::uint8_t> b, std::size_t& pos) {
  require_format(8 <= b.size() - pos, "zfp-chunked: truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[pos++]) << (8 * i);
  return v;
}

/// Slab boundaries along the slowest non-unit axis, 4-aligned.
std::vector<std::pair<std::size_t, std::size_t>> slab_ranges(std::size_t extent,
                                                             std::size_t chunks) {
  chunks = std::max<std::size_t>(1, std::min(chunks, (extent + 3) / 4));
  const std::size_t blocks = (extent + 3) / 4;
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::size_t begin_block = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end_block = (c + 1) * blocks / chunks;
    if (end_block == begin_block) continue;
    out.emplace_back(begin_block * 4, std::min(end_block * 4, extent));
    begin_block = end_block;
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> compress_chunked(std::span<const float> data, const Dims& dims,
                                           const Params& params, ThreadPool* pool,
                                           std::size_t chunks, Stats* stats) {
  require(data.size() == dims.count(), "zfp-chunked: size mismatch");
  if (chunks == 0) chunks = pool ? pool->size() : 1;

  // The slab axis is the slowest non-unit dimension.
  const bool along_z = dims.nz > 1;
  const bool along_y = !along_z && dims.ny > 1;
  const std::size_t extent = along_z ? dims.nz : along_y ? dims.ny : dims.nx;
  const auto ranges = slab_ranges(extent, chunks);

  std::vector<std::vector<std::uint8_t>> streams(ranges.size());
  std::vector<std::future<void>> futures;
  auto run_chunk = [&](std::size_t c) {
    const auto [lo, hi] = ranges[c];
    Dims slab_dims = dims;
    std::size_t offset = 0;
    if (along_z) {
      slab_dims.nz = hi - lo;
      offset = dims.index(0, 0, lo);
    } else if (along_y) {
      slab_dims.ny = hi - lo;
      offset = dims.index(0, lo, 0);
    } else {
      slab_dims.nx = hi - lo;
      offset = lo;
    }
    streams[c] = compress(data.subspan(offset, slab_dims.count()), slab_dims, params);
  };
  if (pool) {
    for (std::size_t c = 0; c < ranges.size(); ++c) {
      futures.push_back(pool->submit([&run_chunk, c] { run_chunk(c); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::size_t c = 0; c < ranges.size(); ++c) run_chunk(c);
  }

  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u64(out, dims.nx);
  put_u64(out, dims.ny);
  put_u64(out, dims.nz);
  out.push_back(along_z ? 2 : along_y ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(streams.size()));
  for (std::size_t c = 0; c < streams.size(); ++c) {
    put_u64(out, ranges[c].first);
    put_u64(out, ranges[c].second);
    put_u64(out, streams[c].size());
  }
  for (const auto& s : streams) out.insert(out.end(), s.begin(), s.end());

  if (stats) {
    stats->total_points = data.size();
    stats->total_blocks = streams.size();
    stats->compressed_bytes = out.size();
    stats->bit_rate = static_cast<double>(out.size()) * 8.0 / static_cast<double>(data.size());
  }
  return out;
}

std::vector<float> decompress_chunked(std::span<const std::uint8_t> bytes,
                                      ThreadPool* pool, Dims* out_dims) {
  std::size_t pos = 0;
  require_format(get_u32(bytes, pos) == kMagic, "zfp-chunked: bad magic");
  Dims dims;
  dims.nx = get_u64(bytes, pos);
  dims.ny = get_u64(bytes, pos);
  dims.nz = get_u64(bytes, pos);
  require_format(pos < bytes.size(), "zfp-chunked: truncated");
  const std::uint8_t axis = bytes[pos++];
  require_format(axis <= 2, "zfp-chunked: bad slab axis");
  const std::uint32_t chunk_count = get_u32(bytes, pos);
  // Every chunk costs a 24-byte table entry, so bound the table allocation
  // by the bytes that remain before sizing anything on chunk_count (a
  // corrupted u32 can claim up to 4G entries).
  require_format(chunk_count <= (bytes.size() - pos) / 24,
                 "zfp-chunked: chunk count exceeds payload");
  struct ChunkMeta {
    std::size_t lo, hi, len, offset;
  };
  std::vector<ChunkMeta> metas(chunk_count);
  const std::size_t extent = axis == 2 ? dims.nz : axis == 1 ? dims.ny : dims.nx;
  std::size_t prev_hi = 0;
  for (auto& m : metas) {
    m.lo = get_u64(bytes, pos);
    m.hi = get_u64(bytes, pos);
    m.len = get_u64(bytes, pos);
    // Monotone non-overlapping slabs inside the extent: overlapping ranges
    // would make the parallel scatter below a data race, and hi < lo would
    // wrap the slab extent.
    require_format(m.lo >= prev_hi && m.lo <= m.hi && m.hi <= extent,
                   "zfp-chunked: bad slab range");
    prev_hi = m.hi;
  }
  for (auto& m : metas) {
    m.offset = pos;
    require_format(m.len <= bytes.size() - pos, "zfp-chunked: chunk overruns buffer");
    pos += m.len;
  }

  // Each slab decodes through decompress(), whose own plausibility bound
  // caps values at 512 per payload byte; the same cap therefore holds for
  // the whole field and bounds this allocation by the stream size.
  const std::size_t count = checked_stream_count(dims, "zfp-chunked");
  require_format(count <= 512 * bytes.size(), "zfp-chunked: dims exceed payload");
  std::vector<float> out(count);
  auto run_chunk = [&](std::size_t c) {
    const auto& m = metas[c];
    Dims slab_dims = dims;
    std::size_t dst = 0;
    if (axis == 2) {
      slab_dims.nz = m.hi - m.lo;
      dst = dims.index(0, 0, m.lo);
    } else if (axis == 1) {
      slab_dims.ny = m.hi - m.lo;
      dst = dims.index(0, m.lo, 0);
    } else {
      slab_dims.nx = m.hi - m.lo;
      dst = m.lo;
    }
    Dims got;
    const auto slab = decompress(bytes.subspan(m.offset, m.len), &got);
    require_format(got == slab_dims, "zfp-chunked: chunk shape mismatch");
    std::copy(slab.begin(), slab.end(), out.begin() + static_cast<std::ptrdiff_t>(dst));
  };
  if (pool) {
    std::vector<std::future<void>> futures;
    for (std::size_t c = 0; c < metas.size(); ++c) {
      futures.push_back(pool->submit([&run_chunk, c] { run_chunk(c); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::size_t c = 0; c < metas.size(); ++c) run_chunk(c);
  }
  if (out_dims) *out_dims = dims;
  return out;
}

}  // namespace cosmo::zfp
