/// \file chunked.hpp
/// \brief Multi-threaded (OpenMP-style) ZFP compression via independent
/// slab chunks.
///
/// Fig. 8's CPU rows include "ZFP with OpenMP", which parallelizes
/// compression over independent block regions (and, as the paper notes,
/// "ZFP does not support the decompression with OpenMP yet" — our chunked
/// container removes that limitation because every chunk is a
/// self-describing stream). Slabs are cut along the slowest axis on
/// 4-sample boundaries, so chunked output decodes bit-identically to what
/// per-chunk single-threaded ZFP would produce.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "zfp/zfp.hpp"

namespace cosmo::zfp {

/// Compresses with \p chunks independent slabs (0 = one per pool worker),
/// running chunk jobs on \p pool (null = sequential).
std::vector<std::uint8_t> compress_chunked(std::span<const float> data, const Dims& dims,
                                           const Params& params, ThreadPool* pool,
                                           std::size_t chunks = 0, Stats* stats = nullptr);

/// Decompresses a compress_chunked() container, decoding chunks in parallel.
std::vector<float> decompress_chunked(std::span<const std::uint8_t> bytes,
                                      ThreadPool* pool, Dims* out_dims = nullptr);

}  // namespace cosmo::zfp
