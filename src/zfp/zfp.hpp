/// \file zfp.hpp
/// \brief ZFP-style transform-based lossy compressor for float fields.
///
/// The paper evaluates cuZFP, which "only supports compression and
/// decompression with fixed-rate mode" (Section IV-B1); fixed-rate is
/// therefore the primary mode here, with fixed-accuracy provided as the
/// CPU-ZFP extension. In fixed-rate mode every 4^rank block occupies
/// exactly round(rate * 4^rank) bits, so the actual bitrate never exceeds
/// the user-set rate (the paper's fixed-rate contract).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/field.hpp"
#include "common/thread_pool.hpp"

namespace cosmo::zfp {

enum class Mode : std::uint8_t {
  kFixedRate = 0,       ///< exact bits/value budget (cuZFP's only mode)
  kFixedAccuracy = 1,   ///< absolute error tolerance (CPU ZFP extension)
  kFixedPrecision = 2,  ///< fixed number of bit planes per block (CPU ZFP)
};

struct Params {
  Mode mode = Mode::kFixedRate;
  /// Bits per value for kFixedRate (e.g. 4.0 => 8x ratio on float32).
  double rate = 8.0;
  /// Absolute error tolerance for kFixedAccuracy.
  double tolerance = 1e-3;
  /// Bit planes kept per block for kFixedPrecision (1..32). Controls
  /// *relative* precision: every block keeps this many planes below its
  /// own exponent, so error scales with local magnitude.
  unsigned precision = 16;
};

struct Stats {
  std::size_t total_points = 0;
  std::size_t total_blocks = 0;
  std::size_t compressed_bytes = 0;
  double bit_rate = 0.0;
};

/// Compresses a float field; the stream is self-describing. When \p pool is
/// non-null the 4^rank block grid is encoded block-range-parallel into
/// private bit writers concatenated in range order — bit-stream
/// concatenation is associative, so the output is byte-identical to the
/// serial stream for any thread count.
std::vector<std::uint8_t> compress(std::span<const float> data, const Dims& dims,
                                   const Params& params, Stats* stats = nullptr,
                                   ThreadPool* pool = nullptr);

/// compress() variant writing into \p out (cleared first, capacity reused) —
/// the allocation-free path repeated sweep iterations use.
void compress_into(std::span<const float> data, const Dims& dims, const Params& params,
                   std::vector<std::uint8_t>& out, Stats* stats = nullptr,
                   ThreadPool* pool = nullptr);

/// Decompresses a buffer produced by compress(). Fixed-rate streams decode
/// block-parallel on \p pool (block i sits at bit offset i * maxbits);
/// variable-size modes decode serially regardless of pool.
std::vector<float> decompress(std::span<const std::uint8_t> bytes, Dims* out_dims = nullptr,
                              ThreadPool* pool = nullptr);

/// decompress() variant writing into \p out (resized in place, capacity
/// reused across repeated calls).
void decompress_into(std::span<const std::uint8_t> bytes, std::vector<float>& out,
                     Dims* out_dims = nullptr, ThreadPool* pool = nullptr);

/// Bits per block implied by a rate for the given rank (fixed-rate mode).
unsigned block_bits_for_rate(double rate, int rank);

}  // namespace cosmo::zfp
