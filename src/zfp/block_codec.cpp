#include "zfp/block_codec.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <climits>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace cosmo::zfp {

namespace {

constexpr UInt kNbMask = 0xaaaaaaaau;

/// Block sizes per rank.
constexpr std::size_t block_size(int rank) {
  return rank == 1 ? 4u : rank == 2 ? 16u : 64u;
}

/// Builds the total-sequency permutation once per rank.
std::vector<std::uint16_t> build_perm(int rank) {
  const std::size_t n = block_size(rank);
  std::vector<std::uint16_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  auto degree = [rank](std::uint16_t idx) {
    const unsigned i = idx & 3u;
    const unsigned j = (idx >> 2) & 3u;
    const unsigned k = (idx >> 4) & 3u;
    return rank == 1 ? i : rank == 2 ? i + j : i + j + k;
  };
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::uint16_t a, std::uint16_t b) { return degree(a) < degree(b); });
  return perm;
}

/// Forward transform over a 4^rank block in place.
void fwd_xform(Int* p, int rank) {
  if (rank == 1) {
    fwd_lift(p, 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t y = 0; y < 4; ++y) fwd_lift(p + 4 * y, 1);
    for (std::size_t x = 0; x < 4; ++x) fwd_lift(p + x, 4);
    return;
  }
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y) fwd_lift(p + 16 * z + 4 * y, 1);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) fwd_lift(p + 16 * z + x, 4);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) fwd_lift(p + 4 * y + x, 16);
}

/// Inverse transform (reverse axis order).
void inv_xform(Int* p, int rank) {
  if (rank == 1) {
    inv_lift(p, 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t x = 0; x < 4; ++x) inv_lift(p + x, 4);
    for (std::size_t y = 0; y < 4; ++y) inv_lift(p + 4 * y, 1);
    return;
  }
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) inv_lift(p + 4 * y + x, 16);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) inv_lift(p + 16 * z + x, 4);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y) inv_lift(p + 16 * z + 4 * y, 1);
}

/// Maximum base-2 exponent over a block (frexp convention: |x| < 2^emax).
int block_emax(std::span<const float> block) {
  float max_abs = 0.0f;
  for (const float v : block) max_abs = std::max(max_abs, std::fabs(v));
  if (max_abs == 0.0f) return INT_MIN;
  int e;
  std::frexp(max_abs, &e);
  return e;
}

}  // namespace

namespace {

// The lifting butterflies intentionally wrap modulo 2^32 (as in reference
// ZFP, whose near-overflow planes round-trip through exactly this wrap).
// Signed +/- overflow is UB, so wrap in unsigned — same bits, defined
// behavior. Right shifts stay on Int (they must be arithmetic); the
// doubling steps use wadd(v, v), the same modular multiply-by-2.
inline Int wadd(Int a, Int b) {
  return static_cast<Int>(static_cast<UInt>(a) + static_cast<UInt>(b));
}
inline Int wsub(Int a, Int b) {
  return static_cast<Int>(static_cast<UInt>(a) - static_cast<UInt>(b));
}

}  // namespace

void fwd_lift(Int* p, std::size_t s) {
  Int x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  // Non-orthogonal transform (1/16 * [[4,4,4,4],[5,1,-1,-5],[-4,4,4,-4],[-2,6,-6,2]]).
  x = wadd(x, w); x >>= 1; w = wsub(w, x);
  z = wadd(z, y); z >>= 1; y = wsub(y, z);
  x = wadd(x, z); x >>= 1; z = wsub(z, x);
  w = wadd(w, y); w >>= 1; y = wsub(y, w);
  w = wadd(w, y >> 1); y = wsub(y, w >> 1);
  p[0 * s] = x;
  p[1 * s] = y;
  p[2 * s] = z;
  p[3 * s] = w;
}

void inv_lift(Int* p, std::size_t s) {
  Int x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y = wadd(y, w >> 1); w = wsub(w, y >> 1);
  y = wadd(y, w); w = wadd(w, w); w = wsub(w, y);
  z = wadd(z, x); x = wadd(x, x); x = wsub(x, z);
  y = wadd(y, z); z = wadd(z, z); z = wsub(z, y);
  w = wadd(w, x); x = wadd(x, x); x = wsub(x, w);
  p[0 * s] = x;
  p[1 * s] = y;
  p[2 * s] = z;
  p[3 * s] = w;
}

UInt int2uint(Int x) { return (static_cast<UInt>(x) + kNbMask) ^ kNbMask; }

Int uint2int(UInt x) { return static_cast<Int>((x ^ kNbMask) - kNbMask); }

std::span<const std::uint16_t> sequency_permutation(int rank) {
  require(rank >= 1 && rank <= 3, "zfp: rank must be 1..3");
  static const std::vector<std::uint16_t> p1 = build_perm(1);
  static const std::vector<std::uint16_t> p2 = build_perm(2);
  static const std::vector<std::uint16_t> p3 = build_perm(3);
  switch (rank) {
    case 1: return p1;
    case 2: return p2;
    default: return p3;
  }
}

unsigned encode_ints(BitWriter& bw, unsigned maxbits, unsigned maxprec,
                     std::span<const UInt> data) {
  const std::size_t size = data.size();
  require(size <= 64, "zfp: block larger than 64 values");
  const unsigned kmin = kIntPrec > maxprec ? kIntPrec - maxprec : 0;
  unsigned bits = maxbits;
  std::size_t n = 0;
  for (unsigned k = kIntPrec; bits && k-- > kmin;) {
    // Step 1: extract bit plane k.
    std::uint64_t x = 0;
    for (std::size_t i = 0; i < size; ++i) {
      x += static_cast<std::uint64_t>((data[i] >> k) & 1u) << i;
    }
    // Step 2: first n bits verbatim (these values are already significant).
    const unsigned m = std::min<unsigned>(static_cast<unsigned>(n), bits);
    bits -= m;
    bw.put(x, m);
    // m == 64 only when the whole block is already significant; x is dead
    // then, but shift-by-64 is UB, so clear it explicitly.
    x = m < 64 ? x >> m : 0;
    // Step 3: unary run-length code for newly significant values.
    auto wbit = [&bw](bool b) {
      bw.put_bit(b);
      return b;
    };
    for (; n < size && bits && (--bits, wbit(x != 0)); x >>= 1, ++n) {
      for (; n < size - 1 && bits && (--bits, !wbit((x & 1u) != 0)); x >>= 1, ++n) {
      }
    }
  }
  return maxbits - bits;
}

unsigned decode_ints(BitReader& br, unsigned maxbits, unsigned maxprec,
                     std::span<UInt> data) {
  const std::size_t size = data.size();
  require(size <= 64, "zfp: block larger than 64 values");
  std::fill(data.begin(), data.end(), 0u);
  const unsigned kmin = kIntPrec > maxprec ? kIntPrec - maxprec : 0;
  unsigned bits = maxbits;
  std::size_t n = 0;
  for (unsigned k = kIntPrec; bits && k-- > kmin;) {
    const unsigned m = std::min<unsigned>(static_cast<unsigned>(n), bits);
    bits -= m;
    std::uint64_t x = br.get(m);
    // Group-testing scan. Consumes exactly the bits the per-bit reference
    // loop would: one group-test bit per outer round, then the zero run of
    // not-yet-significant values — scanned a peeked window at a time with
    // countr_zero instead of bit by bit.
    while (n < size && bits) {
      --bits;
      if (!br.get_bit()) break;  // group test: no more significant values
      while (n < size - 1 && bits) {
        const unsigned chunk = std::min({bits, static_cast<unsigned>(size - 1 - n),
                                         BitReader::kMaxPeekBits});
        const std::uint64_t window = br.peek(chunk);
        if (window == 0) {  // the whole window is insignificant values
          br.skip(chunk);
          bits -= chunk;
          n += chunk;
          continue;
        }
        const unsigned z = static_cast<unsigned>(std::countr_zero(window));
        br.skip(z + 1);  // z zeros + the significance bit that ends the run
        bits -= z + 1;
        n += z;
        break;
      }
      x += std::uint64_t{1} << n;
      ++n;
    }
    for (std::size_t i = 0; x; ++i, x >>= 1) {
      data[i] += static_cast<UInt>(x & 1u) << k;
    }
  }
  return maxbits - bits;
}

unsigned precision_for(int emax, unsigned maxprec, int minexp, int rank) {
  if (emax == INT_MIN) return 0;
  const long p = static_cast<long>(emax) - minexp + 2l * (rank + 1);
  if (p <= 0) return 0;
  return std::min<unsigned>(maxprec, static_cast<unsigned>(p));
}

unsigned encode_block_float(BitWriter& bw, std::span<const float> block, int rank,
                            unsigned maxbits, unsigned maxprec, int minexp,
                            bool pad_to_maxbits) {
  const std::size_t size = block_size(rank);
  require(block.size() == size, "zfp: bad block size");
  const std::uint64_t start_bits = bw.bit_count();

  const int emax = block_emax(block);
  const unsigned prec = precision_for(emax, maxprec, minexp, rank);
  if (prec == 0 || emax == INT_MIN) {
    bw.put_bit(false);  // empty block
  } else {
    bw.put_bit(true);
    // Biased exponent: frexp exponents of finite floats fit in [-148, 128].
    bw.put(static_cast<std::uint64_t>(emax + 256), 10);
    // Align to common exponent and convert to fixed point (2 headroom bits
    // absorb transform gain).
    std::array<Int, 64> ints{};
    for (std::size_t i = 0; i < size; ++i) {
      ints[i] = static_cast<Int>(std::ldexp(static_cast<double>(block[i]),
                                            static_cast<int>(kIntPrec) - 2 - emax));
    }
    fwd_xform(ints.data(), rank);
    const auto perm = sequency_permutation(rank);
    std::array<UInt, 64> coded{};
    for (std::size_t i = 0; i < size; ++i) coded[i] = int2uint(ints[perm[i]]);
    const unsigned header = static_cast<unsigned>(bw.bit_count() - start_bits);
    require(maxbits > header, "zfp: bit budget smaller than block header");
    encode_ints(bw, maxbits - header, prec, std::span<const UInt>(coded.data(), size));
  }

  unsigned used = static_cast<unsigned>(bw.bit_count() - start_bits);
  if (pad_to_maxbits) {
    while (used < maxbits) {
      const unsigned chunk = std::min(maxbits - used, 64u);
      bw.put(0, chunk);
      used += chunk;
    }
  }
  return used;
}

unsigned decode_block_float(BitReader& br, std::span<float> block, int rank,
                            unsigned maxbits, unsigned maxprec, int minexp,
                            bool skip_to_maxbits) {
  const std::size_t size = block_size(rank);
  require(block.size() == size, "zfp: bad block size");
  const std::uint64_t start = br.position();

  if (!br.get_bit()) {
    std::fill(block.begin(), block.end(), 0.0f);
  } else {
    const int emax = static_cast<int>(br.get(10)) - 256;
    const unsigned prec = precision_for(emax, maxprec, minexp, rank);
    std::array<UInt, 64> coded{};
    const unsigned header = static_cast<unsigned>(br.position() - start);
    decode_ints(br, maxbits - header, prec, std::span<UInt>(coded.data(), size));
    const auto perm = sequency_permutation(rank);
    std::array<Int, 64> ints{};
    for (std::size_t i = 0; i < size; ++i) ints[perm[i]] = uint2int(coded[i]);
    inv_xform(ints.data(), rank);
    for (std::size_t i = 0; i < size; ++i) {
      block[i] = static_cast<float>(std::ldexp(static_cast<double>(ints[i]),
                                               emax + 2 - static_cast<int>(kIntPrec)));
    }
  }

  unsigned used = static_cast<unsigned>(br.position() - start);
  if (skip_to_maxbits && used < maxbits) {
    br.seek(start + maxbits);
    used = maxbits;
  }
  return used;
}

}  // namespace cosmo::zfp
