#include "common/error.hpp"

namespace cosmo {

void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

void require_format(bool cond, const std::string& msg) {
  if (!cond) throw FormatError(msg);
}

}  // namespace cosmo
