/// \file cli.hpp
/// \brief Minimal command-line flag parsing for examples and benches.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cosmo {

/// Parses "--key=value", "--key value", and bare "--flag" arguments.
/// Positional arguments are collected in order.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace cosmo
