/// \file thread_pool.hpp
/// \brief A fixed-size worker pool with a parallel_for helper.
///
/// This is the shared-memory execution substrate for block-parallel codec
/// kernels and for the PAT workflow executor (which stands in for the
/// paper's SLURM cluster). Parallelism is explicit, per the MPI/OpenMP
/// guidance in the HPC guides: callers decide the grain, the pool only
/// schedules.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cosmo {

/// Fixed-size thread pool. Tasks are std::function<void()>; submit() returns
/// a future for completion/exception propagation.
class ThreadPool {
 public:
  /// Creates \p n workers; n == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any exception the task
  /// threw.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Splits [0, n) into contiguous chunks and runs \p body(begin, end) on the
/// pool, blocking until all chunks complete. Exceptions from any chunk are
/// rethrown in the caller. With a null pool or n small, runs inline.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_grain = 1024);

/// Process-wide default pool (lazily constructed, hardware concurrency).
ThreadPool& global_pool();

}  // namespace cosmo
