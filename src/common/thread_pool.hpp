/// \file thread_pool.hpp
/// \brief A fixed-size worker pool with a parallel_for helper.
///
/// This is the shared-memory execution substrate for block-parallel codec
/// kernels and for the PAT workflow executor (which stands in for the
/// paper's SLURM cluster). Parallelism is explicit, per the MPI/OpenMP
/// guidance in the HPC guides: callers decide the grain, the pool only
/// schedules.
///
/// Nesting rule: parallel_for() *helps* — while waiting for its chunks the
/// calling thread drains other queued tasks — so a pool worker may itself
/// call parallel_for on the same pool without deadlocking (the sweep
/// scheduler's workers run codec kernels that fan out again).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cosmo {

/// Fixed-size thread pool. Tasks are std::function<void()>; submit() returns
/// a future for completion/exception propagation.
class ThreadPool {
 public:
  /// Creates \p n workers; n == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any exception the task
  /// threw.
  std::future<void> submit(std::function<void()> task);

  /// Pops one queued task (if any) and runs it on the calling thread.
  /// Returns false when the queue was empty. This is how blocked waiters
  /// help drain the queue instead of deadlocking on nested parallelism.
  bool try_run_one();

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Splits [0, n) into contiguous chunks and runs \p body(begin, end) on the
/// pool, blocking until all chunks complete. Exceptions from any chunk are
/// rethrown in the caller. With a null pool or n small, runs inline. The
/// caller participates: it runs chunks (and unrelated queued tasks) while
/// waiting, so nested parallel_for on the same pool cannot deadlock.
///
/// Chunk boundaries depend on the pool size, so bodies whose *result*
/// depends on chunk geometry (e.g. floating-point reductions) must not rely
/// on this partition — give them a fixed geometry and reduce in fixed order
/// (see docs/architecture.md, "Intra-field parallelism").
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_grain = 1024);

/// Process-wide default pool (lazily constructed, hardware concurrency).
ThreadPool& global_pool();

/// Wall seconds spent inside parallel_for regions, process-wide. The bench
/// tooling uses this to measure the parallelizable fraction of a codec run
/// on hosts with fewer cores than the requested thread count (the modeled
/// multicore rows of EXPERIMENTS.md).
double parallel_region_seconds();

/// Maps the CLI-facing `threads` knob onto a pool:
///   1 => null (serial, the timing-faithful default),
///   0 => the process-wide global pool,
///   N>1 => a dedicated ThreadPool(N) owned by this handle.
/// Copies of the knob convention live in CBench::Options and the pipeline
/// JSON schema; keep them in sync.
class PoolHandle {
 public:
  explicit PoolHandle(std::size_t threads);

  [[nodiscard]] ThreadPool* get() const { return pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace cosmo
