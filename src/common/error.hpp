/// \file error.hpp
/// \brief Error handling primitives used across the library.
///
/// Follows the C++ Core Guidelines (E.2): throw exceptions to signal that a
/// function cannot perform its task. All library errors derive from
/// cosmo::Error so callers can catch one type at an API boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace cosmo {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed an argument outside the documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A serialized stream (compressed payload, container file) is malformed.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// An I/O operation on the filesystem failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A transient (retryable) failure: the operation may succeed if retried.
/// Thrown by the GPU simulator for injected soft errors; DeviceCompressor
/// retries these with bounded exponential backoff.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// Device memory was exhausted. Not retryable at the same footprint; callers
/// degrade by falling back to the matching host codec.
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with \p msg when \p cond is false.
void require(bool cond, const std::string& msg);

/// Throws FormatError with \p msg when \p cond is false.
void require_format(bool cond, const std::string& msg);

}  // namespace cosmo
