#include "common/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "common/str.hpp"

namespace cosmo::telemetry {

namespace {

/// Ring state. The ring vector is only resized inside enable()/clear()
/// (documented as quiescent-point operations); recording touches only the
/// atomic cursor and its own slot.
struct TraceState {
  std::atomic<bool> enabled{false};
  std::vector<SpanRecord> ring;
  std::atomic<std::uint64_t> cursor{0};
  std::chrono::steady_clock::time_point epoch;
  std::atomic<std::uint32_t> next_tid{0};
};

TraceState& trace_state() {
  static TraceState state;
  return state;
}

std::uint32_t this_thread_tid() {
  thread_local std::uint32_t tid =
      trace_state().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Per-thread nesting depth; spans record the depth at entry so the Chrome
/// export (and trace-check) can validate that children nest inside parents.
thread_local std::uint32_t t_span_depth = 0;

std::string json_escape_name(const char* name) {
  // Span names are string literals we control, but escape defensively.
  std::string out;
  for (const char* p = name; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::atomic<bool>& Tracer::enabled_flag() { return trace_state().enabled; }

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() -
                                        trace_state().epoch)
                                        .count());
}

void Tracer::enable(std::size_t capacity) {
  TraceState& s = trace_state();
  s.enabled.store(false, std::memory_order_relaxed);
  s.ring.assign(std::max<std::size_t>(capacity, 1), SpanRecord{});
  s.cursor.store(0, std::memory_order_relaxed);
  s.epoch = std::chrono::steady_clock::now();
  s.enabled.store(true, std::memory_order_release);
}

void Tracer::disable() {
  trace_state().enabled.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  TraceState& s = trace_state();
  for (auto& r : s.ring) r = SpanRecord{};
  s.cursor.store(0, std::memory_order_relaxed);
  s.epoch = std::chrono::steady_clock::now();
}

void Tracer::record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                    std::uint32_t depth) {
  TraceState& s = trace_state();
  if (s.ring.empty()) return;
  const std::uint64_t seq = s.cursor.fetch_add(1, std::memory_order_relaxed);
  SpanRecord& slot = s.ring[seq % s.ring.size()];
  slot.name = name;
  slot.tid = this_thread_tid();
  slot.depth = depth;
  slot.start_ns = start_ns;
  slot.end_ns = end_ns;
  slot.seq = seq;
}

std::vector<SpanRecord> Tracer::snapshot() {
  TraceState& s = trace_state();
  const std::uint64_t n = s.cursor.load(std::memory_order_relaxed);
  const std::uint64_t kept = std::min<std::uint64_t>(n, s.ring.size());
  std::vector<SpanRecord> out;
  out.reserve(static_cast<std::size_t>(kept));
  for (const SpanRecord& r : s.ring) {
    if (r.name != nullptr) out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.seq < b.seq;
  });
  return out;
}

std::size_t Tracer::dropped() {
  TraceState& s = trace_state();
  const std::uint64_t n = s.cursor.load(std::memory_order_relaxed);
  return n > s.ring.size() ? static_cast<std::size_t>(n - s.ring.size()) : 0;
}

std::string Tracer::chrome_trace_json() {
  const std::vector<SpanRecord> spans = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += strprintf(
        "{\"name\":\"%s\",\"cat\":\"cosmo\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u}}",
        json_escape_name(r.name).c_str(), static_cast<double>(r.start_ns) / 1e3,
        static_cast<double>(r.end_ns - r.start_ns) / 1e3, r.tid, r.depth);
  }
  out += strprintf("],\"otherData\":{\"dropped_spans\":%zu}}", dropped());
  return out;
}

void SpanScope::begin(const char* name) {
  name_ = name;
  depth_ = t_span_depth++;
  start_ns_ = Tracer::now_ns();
}

void SpanScope::end() {
  const std::uint64_t end_ns = Tracer::now_ns();
  --t_span_depth;
  // Record even if tracing was disabled mid-span: the span began under an
  // enabled tracer and the buffer is still there.
  Tracer::record(name_, start_ns_, end_ns, depth_);
}

void Gauge::set(std::int64_t v) {
  v_.store(v, std::memory_order_relaxed);
  maximize(v);
}

void Gauge::maximize(std::int64_t v) {
  std::int64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Gauge::reset() {
  v_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::observe_seconds(double seconds) {
  observe(seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0);
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // unique_ptr keeps metric addresses stable while the maps grow, so call
  // sites can cache references.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl impl;
  return impl;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : i.counters) {
    out += strprintf("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : i.gauges) {
    out += strprintf("%s\n    \"%s\": {\"value\": %lld, \"max\": %lld}", first ? "" : ",",
                     name.c_str(), static_cast<long long>(g->value()),
                     static_cast<long long>(g->max()));
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : i.histograms) {
    out += strprintf(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"max\": %llu, \"buckets\": {",
        first ? "" : ",", name.c_str(), static_cast<unsigned long long>(h->count()),
        static_cast<unsigned long long>(h->sum()),
        static_cast<unsigned long long>(h->max()));
    bool bfirst = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      out += strprintf("%s\"%zu\": %llu", bfirst ? "" : ", ", b,
                       static_cast<unsigned long long>(n));
      bfirst = false;
    }
    out += "}}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

void MetricsRegistry::reset() {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, g] : i.gauges) g->reset();
  for (auto& [name, h] : i.histograms) h->reset();
}

}  // namespace cosmo::telemetry
