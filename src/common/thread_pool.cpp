#include "common/thread_pool.hpp"

#include <algorithm>

namespace cosmo {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    std::lock_guard lock(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_grain) {
  if (n == 0) return;
  const std::size_t workers = pool ? pool->size() : 1;
  if (workers <= 1 || n <= min_grain) {
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(workers * 4, (n + min_grain - 1) / min_grain);
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += step) {
    const std::size_t end = std::min(begin + step, n);
    futs.push_back(pool->submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& f : futs) f.get();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace cosmo
