#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace cosmo {

namespace {

/// Nanoseconds spent inside parallel_for regions (monotonic, process-wide).
std::atomic<std::uint64_t> g_parallel_region_ns{0};

}  // namespace

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    std::lock_guard lock(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    std::lock_guard lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
    ++active_;  // counted like a worker so wait_idle stays sound
  }
  task();
  {
    std::lock_guard lock(mu_);
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_grain) {
  if (n == 0) return;
  const std::size_t workers = pool ? pool->size() : 1;
  if (workers <= 1 || n <= min_grain) {
    body(0, n);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t chunks = std::min(workers * 4, (n + min_grain - 1) / min_grain);
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  // Submit all but the first chunk, run the first inline, then help drain
  // the queue while waiting: a blocked caller that is itself a pool worker
  // keeps the pool making progress (no nested-parallelism deadlock).
  for (std::size_t begin = step; begin < n; begin += step) {
    const std::size_t end = std::min(begin + step, n);
    futs.push_back(pool->submit([&body, begin, end] { body(begin, end); }));
  }
  std::exception_ptr first_error;
  try {
    body(0, std::min(step, n));
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futs) {
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool->try_run_one()) {
        f.wait_for(std::chrono::microseconds(50));
      }
    }
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  g_parallel_region_ns.fetch_add(
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count()),
      std::memory_order_relaxed);
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

double parallel_region_seconds() {
  return static_cast<double>(g_parallel_region_ns.load(std::memory_order_relaxed)) * 1e-9;
}

PoolHandle::PoolHandle(std::size_t threads) {
  if (threads == 0) {
    pool_ = &global_pool();
  } else if (threads > 1) {
    owned_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_.get();
  }
}

}  // namespace cosmo
