/// \file backoff.hpp
/// \brief Deterministic, seedable retry backoff with decorrelating jitter.
///
/// One shared schedule for every bounded-retry site (the GPU transient-fault
/// retry in gpu/device_compressor.cpp, the foresightd job retries): delay
/// for attempt k is the capped exponential min(base * 2^(k-1), max) scaled
/// by a seeded jitter factor in [1 - jitter_fraction, 1]. The jitter is a
/// pure function of (seed, salt, attempt), so tests can assert exact delays
/// while concurrent retry sequences with distinct salts draw decorrelated
/// schedules — under load, N jobs hitting the same transient fault cannot
/// synchronize into a thundering herd of simultaneous retries.
#pragma once

#include <cstdint>

namespace cosmo::backoff {

/// Backoff schedule knobs. The defaults match the historical GPU retry
/// policy (0.5 ms doubling to a 50 ms cap) with half-range jitter.
struct Policy {
  double base_delay_seconds = 0.5e-3;
  double max_delay_seconds = 50e-3;
  /// Fraction of the exponential delay the jitter may remove: the delay is
  /// scaled by a factor drawn from [1 - jitter_fraction, 1]. 0 disables
  /// jitter (pure exponential backoff).
  double jitter_fraction = 0.5;
  /// Seed for the jitter hash; fixed per process or per policy so schedules
  /// are reproducible run to run.
  std::uint64_t seed = 0xB0FFB0FFB0FFB0FFull;
};

/// A uniform draw in [0, 1) that is a pure function of (seed, salt, draw) —
/// the jitter source, exposed for tests and for other decorrelation needs.
[[nodiscard]] double jitter_uniform(std::uint64_t seed, std::uint64_t salt,
                                    std::uint64_t draw);

/// The delay to sleep before retry number \p attempt (1-based: attempt 1 is
/// the wait after the first failure). \p salt decorrelates concurrent retry
/// sequences — give each job/sequence its own value. Deterministic for a
/// given (policy, attempt, salt); always in
/// [(1 - jitter_fraction) * exp_delay, exp_delay] where exp_delay is the
/// capped exponential, so the max_delay cap is never exceeded.
[[nodiscard]] double delay_seconds(const Policy& policy, int attempt,
                                   std::uint64_t salt = 0);

/// Process-wide monotonic salt source: each bounded-retry sequence claims
/// one value so concurrent sequences draw decorrelated jitter without any
/// caller-side plumbing. Single-threaded callers see a deterministic
/// sequence (0, 1, 2, ...) per process.
[[nodiscard]] std::uint64_t next_sequence_salt();

}  // namespace cosmo::backoff
