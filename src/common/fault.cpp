#include "common/fault.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"
#include "common/str.hpp"

namespace cosmo::fault {

namespace {

// SplitMix64 (public domain algorithm). Self-contained so cosmo_common does
// not depend on cosmo_random; fault streams only need cheap, well-mixed
// bits, not the quality of the simulation RNG.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::atomic<FaultPlan*> g_active{nullptr};

}  // namespace

const char* corruption_name(Corruption kind) {
  switch (kind) {
    case Corruption::kBitFlip: return "bit-flip";
    case Corruption::kTruncate: return "truncate";
    case Corruption::kZeroRun: return "zero-run";
  }
  return "unknown";
}

FaultPlan::FaultPlan(const Config& cfg) : cfg_(cfg), rng_state_(cfg.seed) {}

FaultPlan::Counts FaultPlan::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

double FaultPlan::next_uniform() {
  return static_cast<double>(splitmix64(rng_state_) >> 11) * 0x1.0p-53;
}

void FaultPlan::apply(std::vector<std::uint8_t>& bytes, Corruption kind, std::size_t offset,
                      std::size_t arg) {
  if (bytes.empty()) return;
  switch (kind) {
    case Corruption::kBitFlip: {
      const std::size_t byte = std::min(offset, bytes.size() - 1);
      bytes[byte] = static_cast<std::uint8_t>(bytes[byte] ^ (1u << (arg % 8)));
      break;
    }
    case Corruption::kTruncate: {
      bytes.resize(std::min(offset, bytes.size()));
      break;
    }
    case Corruption::kZeroRun: {
      const std::size_t begin = std::min(offset, bytes.size());
      const std::size_t end = begin + std::min(arg, bytes.size() - begin);
      std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(begin),
                bytes.begin() + static_cast<std::ptrdiff_t>(end), std::uint8_t{0});
      break;
    }
  }
}

bool FaultPlan::corrupt(std::vector<std::uint8_t>& bytes) {
  if (cfg_.corrupt_probability <= 0.0 || bytes.empty()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (next_uniform() >= cfg_.corrupt_probability) return false;

  Corruption kinds[3];
  std::size_t n_kinds = 0;
  if (cfg_.corrupt_bit_flip) kinds[n_kinds++] = Corruption::kBitFlip;
  if (cfg_.corrupt_truncate) kinds[n_kinds++] = Corruption::kTruncate;
  if (cfg_.corrupt_zero_run) kinds[n_kinds++] = Corruption::kZeroRun;
  if (n_kinds == 0) return false;

  const Corruption kind = kinds[splitmix64(rng_state_) % n_kinds];
  const std::size_t offset = splitmix64(rng_state_) % bytes.size();
  const std::size_t arg = kind == Corruption::kZeroRun
                              ? 1 + splitmix64(rng_state_) % 64
                              : splitmix64(rng_state_) % 8;
  apply(bytes, kind, offset, arg);
  ++counts_.corruptions;
  return true;
}

void FaultPlan::maybe_throw_gpu_transient(const char* where) {
  bool fire = false;
  std::uint64_t op = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op = ++gpu_ops_;
    if (cfg_.gpu_transient_every > 0 && op % cfg_.gpu_transient_every == 0) fire = true;
    if (!fire && cfg_.gpu_transient_probability > 0.0 &&
        next_uniform() < cfg_.gpu_transient_probability) {
      fire = true;
    }
    if (fire) ++counts_.gpu_transients;
  }
  if (fire) {
    throw TransientError(strprintf("fault: injected transient GPU error in %s (device op %llu)",
                                   where, static_cast<unsigned long long>(op)));
  }
}

void FaultPlan::maybe_throw_gpu_oom(const char* where) {
  bool fire = false;
  std::uint64_t op = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op = ++oom_ops_;
    if (cfg_.gpu_oom_every > 0 && op % cfg_.gpu_oom_every == 0) fire = true;
    if (!fire && cfg_.gpu_oom_probability > 0.0 && next_uniform() < cfg_.gpu_oom_probability) {
      fire = true;
    }
    if (fire) ++counts_.gpu_ooms;
  }
  if (fire) {
    throw OutOfMemoryError(strprintf("fault: injected device-OOM in %s (device op %llu)", where,
                                     static_cast<unsigned long long>(op)));
  }
}

void FaultPlan::maybe_throw_io(const std::string& path, const char* op) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t n = ++io_ops_;
    if (cfg_.io_failure_every > 0 && n % cfg_.io_failure_every == 0) fire = true;
    if (!fire && cfg_.io_failure_probability > 0.0 &&
        next_uniform() < cfg_.io_failure_probability) {
      fire = true;
    }
    if (fire) ++counts_.io_failures;
  }
  if (fire) {
    throw IoError(strprintf("fault: injected I/O failure during %s of '%s'", op, path.c_str()));
  }
}

FaultPlan* active() { return g_active.load(std::memory_order_acquire); }

void set_active(FaultPlan* plan) { g_active.store(plan, std::memory_order_release); }

Scope::Scope(FaultPlan& plan) : prev_(active()) { set_active(&plan); }

Scope::~Scope() { set_active(prev_); }

}  // namespace cosmo::fault
