/// \file str.hpp
/// \brief Small string utilities (formatting, splitting, human-readable sizes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cosmo {

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits \p s on \p sep, keeping empty fields.
std::vector<std::string> split(const std::string& s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string trim(const std::string& s);

/// True when \p s starts with \p prefix.
bool starts_with(const std::string& s, const std::string& prefix);

/// Lowercases ASCII characters.
std::string to_lower(std::string s);

/// "38 GB", "6.6 GB", "512 MB" style byte counts.
std::string human_bytes(std::uint64_t bytes);

/// Joins items with \p sep.
std::string join(const std::vector<std::string>& items, const std::string& sep);

}  // namespace cosmo
