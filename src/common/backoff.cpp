#include "common/backoff.hpp"

#include <algorithm>
#include <atomic>

namespace cosmo::backoff {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double jitter_uniform(std::uint64_t seed, std::uint64_t salt, std::uint64_t draw) {
  // Three chained splitmix rounds decorrelate the inputs; the top 53 bits
  // make an exact double in [0, 1).
  const std::uint64_t h = splitmix64(splitmix64(splitmix64(seed) ^ salt) ^ draw);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double delay_seconds(const Policy& policy, int attempt, std::uint64_t salt) {
  if (attempt < 1) attempt = 1;
  double exp_delay = policy.base_delay_seconds;
  // Doubling with an early cap so huge attempt counts cannot overflow.
  for (int i = 1; i < attempt && exp_delay < policy.max_delay_seconds; ++i) {
    exp_delay *= 2.0;
  }
  exp_delay = std::min(exp_delay, policy.max_delay_seconds);
  const double jf = std::clamp(policy.jitter_fraction, 0.0, 1.0);
  if (jf == 0.0) return exp_delay;
  const double u = jitter_uniform(policy.seed, salt, static_cast<std::uint64_t>(attempt));
  return exp_delay * (1.0 - jf * u);
}

std::uint64_t next_sequence_salt() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cosmo::backoff
