/// \file admission_queue.hpp
/// \brief Bounded multi-producer/multi-consumer job queue with admission
/// control: capacity, per-client quotas, priorities, and a drain mode.
///
/// The backpressure primitive behind foresightd. Admission is
/// reject-with-reason, never block-and-grow: try_push() refuses immediately
/// when the queue is at capacity, when the client's outstanding-job quota
/// is spent, or when the queue is draining — so memory stays bounded under
/// any client behavior and the caller can answer the client right away.
///
/// Quotas count *outstanding* work (queued + popped-but-not-released): the
/// consumer calls release(client) when a job reaches a terminal state, so a
/// client can never occupy more than its quota of the service end to end.
///
/// close() starts the drain: subsequent pushes are refused with kDraining,
/// while pop() keeps handing out the already-admitted items until the
/// queue is empty, then returns false — every admitted item is popped
/// exactly once, which is what lets the daemon give every job exactly one
/// terminal status during shutdown.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace cosmo {

/// Outcome of an admission attempt. Values other than kAccepted name the
/// rejection reason (surfaced to clients and as metrics counters).
enum class Admission { kAccepted, kQueueFull, kQuotaExceeded, kDraining };

/// Short stable name: "accepted", "queue_full", "quota", "draining".
[[nodiscard]] constexpr const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kQueueFull: return "queue_full";
    case Admission::kQuotaExceeded: return "quota";
    case Admission::kDraining: return "draining";
  }
  return "unknown";
}

template <typename T>
class AdmissionQueue {
 public:
  struct Options {
    std::size_t capacity = 64;         ///< max queued items (0 is illegal)
    std::size_t per_client_quota = 0;  ///< max outstanding per client (0 = unlimited)
    int priorities = 3;                ///< priority levels [0, priorities)
  };

  explicit AdmissionQueue(Options options) : options_(options) {
    if (options_.capacity == 0) options_.capacity = 1;
    if (options_.priorities < 1) options_.priorities = 1;
    lanes_.resize(static_cast<std::size_t>(options_.priorities));
  }

  /// Attempts to admit \p item for \p client at \p priority (0 = highest;
  /// out-of-range values clamp). On kAccepted the item is queued and the
  /// client's outstanding count is incremented; otherwise the item is
  /// returned to the caller untouched via the moved-from argument contract.
  [[nodiscard]] Admission try_push(T item, std::uint64_t client, int priority = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_) return Admission::kDraining;
    if (size_ >= options_.capacity) return Admission::kQueueFull;
    if (options_.per_client_quota > 0 &&
        outstanding_[client] >= options_.per_client_quota) {
      return Admission::kQuotaExceeded;
    }
    const auto lane = static_cast<std::size_t>(
        std::min(std::max(priority, 0), options_.priorities - 1));
    lanes_[lane].push_back(std::move(item));
    ++size_;
    ++outstanding_[client];
    if (size_ > high_water_) high_water_ = size_;
    lock.unlock();
    cv_.notify_one();
    return Admission::kAccepted;
  }

  /// Blocks until an item is available (highest priority first, FIFO within
  /// a priority) or the queue is closed *and* empty. Returns false only in
  /// the latter case — after close(), already-admitted items keep coming.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return size_ > 0 || draining_; });
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      out = std::move(lane.front());
      lane.pop_front();
      --size_;
      return true;
    }
    return false;  // draining and empty
  }

  /// Non-blocking pop; returns false when empty.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      out = std::move(lane.front());
      lane.pop_front();
      --size_;
      return true;
    }
    return false;
  }

  /// Marks one of \p client's outstanding jobs terminal, freeing quota.
  void release(std::uint64_t client) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = outstanding_.find(client);
    if (it == outstanding_.end()) return;
    if (--(it->second) == 0) outstanding_.erase(it);
  }

  /// Enters drain mode: every later try_push is refused with kDraining and
  /// blocked pop() calls return once the queue empties. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool draining() const {
    std::lock_guard<std::mutex> lock(mu_);
    return draining_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  /// Peak queued depth since construction.
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  /// Outstanding (queued + unreleased) jobs for \p client.
  [[nodiscard]] std::size_t outstanding(std::uint64_t client) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = outstanding_.find(client);
    return it == outstanding_.end() ? 0 : it->second;
  }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<T>> lanes_;  // index = priority, 0 pops first
  std::map<std::uint64_t, std::size_t> outstanding_;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  bool draining_ = false;
};

}  // namespace cosmo
