/// \file field.hpp
/// \brief Dimension descriptors and owning/non-owning views of scalar fields.
///
/// Both HACC (1-D particle arrays) and Nyx (3-D grids) data are represented
/// as a flat float buffer plus a Dims descriptor, matching the paper's
/// dimension-conversion trick (Section IV-B4): a 1-D HACC array is
/// reinterpreted as 512x512x512 or 2,097,152x8x8 by only changing Dims.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace cosmo {

/// Up-to-3-D extents; unused trailing dimensions are 1.
struct Dims {
  std::size_t nx = 1;  ///< fastest-varying extent
  std::size_t ny = 1;
  std::size_t nz = 1;  ///< slowest-varying extent

  static Dims d1(std::size_t n) { return {n, 1, 1}; }
  static Dims d2(std::size_t x, std::size_t y) { return {x, y, 1}; }
  static Dims d3(std::size_t x, std::size_t y, std::size_t z) { return {x, y, z}; }

  [[nodiscard]] std::size_t count() const { return nx * ny * nz; }

  /// 1, 2 or 3: the number of extents larger than one (minimum 1).
  [[nodiscard]] int rank() const {
    if (nz > 1) return 3;
    if (ny > 1) return 2;
    return 1;
  }

  /// Row-major linear index of (x, y, z).
  [[nodiscard]] std::size_t index(std::size_t x, std::size_t y, std::size_t z) const {
    return (z * ny + y) * nx + x;
  }

  bool operator==(const Dims&) const = default;

  [[nodiscard]] std::string to_string() const;
};

/// An owning scalar field: name + extents + flat row-major float storage.
struct Field {
  std::string name;
  Dims dims;
  std::vector<float> data;

  Field() = default;
  Field(std::string name_, Dims dims_)
      : name(std::move(name_)), dims(dims_), data(dims_.count(), 0.0f) {}
  Field(std::string name_, Dims dims_, std::vector<float> data_)
      : name(std::move(name_)), dims(dims_), data(std::move(data_)) {
    require(data.size() == dims.count(), "Field '" + name + "': data size mismatch");
  }

  [[nodiscard]] std::span<const float> view() const { return data; }
  [[nodiscard]] std::span<float> view() { return data; }
  [[nodiscard]] std::size_t bytes() const { return data.size() * sizeof(float); }

  /// Returns a copy with the same data reinterpreted under new extents
  /// (the paper's HACC 1-D -> 3-D conversion). Pads with zeros when the new
  /// shape is larger; truncation is rejected.
  [[nodiscard]] Field reshaped(Dims new_dims) const;
};

/// Minimum/maximum over a span; throws on empty input.
std::pair<float, float> value_range(std::span<const float> values);

/// Overflow-checked dims.count() for extents deserialized from untrusted
/// streams: throws FormatError (tagged with \p where) when any extent is
/// zero or nx*ny*nz would overflow std::size_t. Decoders must size their
/// output through this instead of dims.count() so corrupted headers cannot
/// wrap the element count.
std::size_t checked_stream_count(const Dims& dims, const char* where);

}  // namespace cosmo
