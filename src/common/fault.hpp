/// \file fault.hpp
/// \brief Deterministic fault injection for robustness testing.
///
/// A FaultPlan is a seeded source of injected failures: compressed-stream
/// corruption (bit flips, truncation, zero runs), simulated transient GPU
/// errors and device-OOM, and filesystem I/O failures. Everything is off by
/// default — with no active plan (or a default-constructed Config) every
/// hook is a no-op, so the library's byte-identical-output guarantee is
/// untouched in normal operation.
///
/// Injection sites poll the process-wide active plan:
///   - CBench::run_session() corrupts the compressed stream between
///     compress() and decompress() via corrupt().
///   - gpu::GpuSimulator throws TransientError / OutOfMemoryError from its
///     timing-model entry points via maybe_throw_gpu_*().
///   - io::load()/save() throw IoError via maybe_throw_io().
///
/// Plans use both deterministic "every Nth call" counters (for exact unit
/// tests) and seeded probabilities (for fuzz-style sweeps). All methods are
/// thread-safe; the sweep scheduler calls them from worker threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cosmo::fault {

/// Kinds of stream corruption the plan can inject.
enum class Corruption : std::uint8_t { kBitFlip = 0, kTruncate = 1, kZeroRun = 2 };

/// Returns a short human-readable name ("bit-flip", "truncate", "zero-run").
const char* corruption_name(Corruption kind);

/// Knobs for a FaultPlan. The default state injects nothing.
struct Config {
  std::uint64_t seed = 0x5EEDFA17ull;

  /// Probability in [0, 1] that corrupt() mutates a given stream.
  double corrupt_probability = 0.0;
  /// Which corruption kinds the plan may pick from (all enabled by default;
  /// only consulted when corrupt_probability > 0).
  bool corrupt_bit_flip = true;
  bool corrupt_truncate = true;
  bool corrupt_zero_run = true;

  /// Every Nth GPU model operation throws TransientError (0 = never).
  std::uint32_t gpu_transient_every = 0;
  /// Per-operation probability of a transient GPU error.
  double gpu_transient_probability = 0.0;

  /// Every Nth GPU model operation throws OutOfMemoryError (0 = never).
  std::uint32_t gpu_oom_every = 0;
  /// Per-operation probability of a device-OOM.
  double gpu_oom_probability = 0.0;

  /// Every Nth io::load/save call throws IoError (0 = never).
  std::uint32_t io_failure_every = 0;
  /// Per-call probability of an I/O failure.
  double io_failure_probability = 0.0;
};

/// Seeded, thread-safe fault source. See the file comment for the sites
/// that poll it.
class FaultPlan {
 public:
  explicit FaultPlan(const Config& cfg);

  const Config& config() const { return cfg_; }

  /// Totals of injected faults, for asserting test expectations.
  struct Counts {
    std::uint64_t corruptions = 0;
    std::uint64_t gpu_transients = 0;
    std::uint64_t gpu_ooms = 0;
    std::uint64_t io_failures = 0;
  };
  Counts counts() const;

  /// Applies one targeted corruption to \p bytes in place. Deterministic and
  /// usable without a plan instance (the test matrix drives it directly).
  ///   kBitFlip:  flips bit (arg % 8) of the byte at \p offset.
  ///   kTruncate: resizes the stream to \p offset bytes.
  ///   kZeroRun:  zeroes \p arg bytes starting at \p offset.
  /// Offsets/lengths are clamped to the stream; empty streams are untouched.
  static void apply(std::vector<std::uint8_t>& bytes, Corruption kind, std::size_t offset,
                    std::size_t arg);

  /// Maybe corrupts a compressed stream in place (seeded kind/offset choice).
  /// Returns true when a corruption was injected.
  bool corrupt(std::vector<std::uint8_t>& bytes);

  /// Throws TransientError / OutOfMemoryError / IoError according to the
  /// config. \p where / \p path appear in the exception message.
  void maybe_throw_gpu_transient(const char* where);
  void maybe_throw_gpu_oom(const char* where);
  void maybe_throw_io(const std::string& path, const char* op);

 private:
  double next_uniform();  // callers hold mu_

  Config cfg_;
  mutable std::mutex mu_;
  std::uint64_t rng_state_;
  std::uint64_t gpu_ops_ = 0;
  std::uint64_t oom_ops_ = 0;
  std::uint64_t io_ops_ = 0;
  Counts counts_;
};

/// The process-wide active plan, or nullptr when fault injection is off
/// (the default). Injection sites do `if (auto* p = fault::active()) ...`.
FaultPlan* active();

/// Installs \p plan as the active plan (nullptr disables injection).
/// Prefer Scope for exception safety.
void set_active(FaultPlan* plan);

/// RAII installer: activates a plan for the current scope, restoring the
/// previous plan (usually nullptr) on destruction.
class Scope {
 public:
  explicit Scope(FaultPlan& plan);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  FaultPlan* prev_;
};

}  // namespace cosmo::fault
