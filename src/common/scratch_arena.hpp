/// \file scratch_arena.hpp
/// \brief Reusable scratch-buffer pool for repeated codec runs.
///
/// Sweeps push thousands of compress/decompress iterations over same-sized
/// fields; reallocating the padded-input, compressed-stream and
/// reconstruction buffers on every iteration dominates allocator traffic.
/// A ScratchArena hands out leased buffers that return to the arena when
/// the lease dies, so the next iteration reuses their capacity.
///
/// Ownership rules (see docs/architecture.md):
///  - an arena is NOT thread-safe; the sweep scheduler gives each worker
///    its own arena (one per CodecSession);
///  - leases must not outlive their arena;
///  - a buffer's contents are unspecified at lease time — callers size and
///    fill it themselves (assign/resize/clear).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace cosmo {

class ScratchArena;

/// RAII lease of a std::vector<T> drawn from an arena. Move-only; the
/// buffer returns to the arena's free list on destruction. A
/// default-constructed lease owns nothing and is bool-false.
template <typename T>
class ArenaLease {
 public:
  ArenaLease() = default;
  ArenaLease(ScratchArena* arena, std::unique_ptr<std::vector<T>> buf)
      : arena_(arena), buf_(std::move(buf)) {}
  ArenaLease(ArenaLease&& other) noexcept
      : arena_(other.arena_), buf_(std::move(other.buf_)) {
    other.arena_ = nullptr;
  }
  ArenaLease& operator=(ArenaLease&& other) noexcept {
    if (this != &other) {
      reset();
      arena_ = other.arena_;
      buf_ = std::move(other.buf_);
      other.arena_ = nullptr;
    }
    return *this;
  }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;
  ~ArenaLease() { reset(); }

  /// Returns the buffer to the arena (no-op for an empty lease).
  void reset();

  [[nodiscard]] std::vector<T>& operator*() { return *buf_; }
  [[nodiscard]] const std::vector<T>& operator*() const { return *buf_; }
  [[nodiscard]] std::vector<T>* operator->() { return buf_.get(); }
  [[nodiscard]] const std::vector<T>* operator->() const { return buf_.get(); }
  explicit operator bool() const { return buf_ != nullptr; }

 private:
  ScratchArena* arena_ = nullptr;
  std::unique_ptr<std::vector<T>> buf_;
};

/// The pool. Holds free lists of float and byte buffers plus usage stats
/// (request/reuse counters and a capacity high-water mark).
class ScratchArena {
 public:
  struct Stats {
    std::size_t requests = 0;         ///< total leases handed out
    std::size_t reuses = 0;           ///< leases served from the free list
    std::size_t pooled_buffers = 0;   ///< buffers currently in the free lists
    std::size_t pooled_bytes = 0;     ///< capacity currently in the free lists
    std::size_t high_water_bytes = 0; ///< peak pooled + leased capacity seen
  };

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Leases a float buffer; contents and size are unspecified.
  [[nodiscard]] ArenaLease<float> floats();
  /// Leases a byte buffer; contents and size are unspecified.
  [[nodiscard]] ArenaLease<std::uint8_t> bytes();
  /// Leases an int32 buffer (codec index/chain tables); contents and size
  /// are unspecified.
  [[nodiscard]] ArenaLease<std::int32_t> ints();

  [[nodiscard]] Stats stats() const { return stats_; }

  /// Drops all pooled buffers (leased buffers are unaffected).
  void trim();

 private:
  template <typename U>
  friend class ArenaLease;

  void release(std::unique_ptr<std::vector<float>> buf);
  void release(std::unique_ptr<std::vector<std::uint8_t>> buf);
  void release(std::unique_ptr<std::vector<std::int32_t>> buf);
  void account_release(std::size_t capacity_bytes);

  std::vector<std::unique_ptr<std::vector<float>>> float_pool_;
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> byte_pool_;
  std::vector<std::unique_ptr<std::vector<std::int32_t>>> int_pool_;
  Stats stats_;
  /// Last-known capacity of leased buffers; refreshed when leases return
  /// (a leased buffer may grow while out, so the high-water mark is exact
  /// only at release points).
  std::size_t leased_bytes_ = 0;
};

template <typename T>
void ArenaLease<T>::reset() {
  if (arena_ && buf_) arena_->release(std::move(buf_));
  arena_ = nullptr;
  buf_.reset();
}

}  // namespace cosmo
