#include "common/field.hpp"

#include <algorithm>

#include "common/str.hpp"

namespace cosmo {

std::string Dims::to_string() const {
  if (rank() == 1) return strprintf("%zu", nx);
  if (rank() == 2) return strprintf("%zux%zu", nx, ny);
  return strprintf("%zux%zux%zu", nx, ny, nz);
}

Field Field::reshaped(Dims new_dims) const {
  require(new_dims.count() >= data.size(),
          "Field::reshaped: target shape smaller than data (" + new_dims.to_string() + ")");
  Field out(name, new_dims);
  std::copy(data.begin(), data.end(), out.data.begin());
  return out;
}

std::size_t checked_stream_count(const Dims& dims, const char* where) {
  constexpr std::size_t kMax = static_cast<std::size_t>(-1);
  require_format(dims.nx > 0 && dims.ny > 0 && dims.nz > 0,
                 std::string(where) + ": zero extent in stream dims " + dims.to_string());
  require_format(dims.nx <= kMax / dims.ny && dims.nx * dims.ny <= kMax / dims.nz,
                 std::string(where) + ": stream dims overflow " + dims.to_string());
  return dims.nx * dims.ny * dims.nz;
}

std::pair<float, float> value_range(std::span<const float> values) {
  require(!values.empty(), "value_range: empty span");
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return {*lo, *hi};
}

}  // namespace cosmo
