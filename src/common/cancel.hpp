/// \file cancel.hpp
/// \brief Cooperative cancellation and deadline tokens.
///
/// A CancelToken is a copyable handle to shared cancellation state: the
/// submitter keeps one copy (to cancel, e.g. when a drain budget expires)
/// and the executing job keeps another, calling check() at stage boundaries
/// (before compress, between compress and decompress, before responding).
/// Cancellation is cooperative — a running codec kernel is never
/// interrupted mid-stream; the job observes the token at the next boundary
/// and unwinds with a distinct exception type so callers can report
/// "cancelled" and "deadline" as statuses separate from "failed".
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "common/error.hpp"

namespace cosmo {

/// The job was cancelled by its owner (shutdown drain, client abort).
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// The job's deadline passed before it completed.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what) : Error(what) {}
};

/// Copyable handle to shared cancel/deadline state. A default-constructed
/// token has no deadline and is never cancelled until cancel() is called on
/// it (or on any copy).
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// A token that expires \p seconds from now (<= 0 means already expired).
  [[nodiscard]] static CancelToken with_deadline(double seconds) {
    CancelToken t;
    t.state_->has_deadline = true;
    t.state_->deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                            std::chrono::duration<double>(seconds));
    return t;
  }

  /// Requests cancellation; visible to every copy of the token.
  void cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool has_deadline() const { return state_->has_deadline; }

  [[nodiscard]] bool deadline_expired() const {
    return state_->has_deadline && Clock::now() >= state_->deadline;
  }

  /// True when the job should stop (either signal).
  [[nodiscard]] bool stop_requested() const { return cancelled() || deadline_expired(); }

  /// Seconds until the deadline (negative when past; +inf with no deadline).
  [[nodiscard]] double remaining_seconds() const;

  /// Stage-boundary check: throws CancelledError / DeadlineExceededError
  /// when the corresponding signal is set (cancellation wins when both are).
  /// \p what names the stage for the exception message.
  void check(const char* what = "job") const;

 private:
  using Clock = std::chrono::steady_clock;
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
  };
  std::shared_ptr<State> state_;
};

}  // namespace cosmo
