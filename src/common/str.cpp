#include "common/str.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace cosmo {

std::string strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, begin);
    if (pos == std::string::npos) {
      out.push_back(s.substr(begin));
      return out;
    }
    out.push_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string to_lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string human_bytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1000.0 && u < 5) {
    v /= 1000.0;
    ++u;
  }
  if (v >= 100.0 || v == static_cast<double>(static_cast<std::uint64_t>(v))) {
    return strprintf("%.0f %s", v, units[u]);
  }
  return strprintf("%.1f %s", v, units[u]);
}

std::string join(const std::vector<std::string>& items, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace cosmo
