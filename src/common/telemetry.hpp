/// \file telemetry.hpp
/// \brief The observability layer: per-stage timing facts, span tracing and
/// a process-wide metrics registry.
///
/// Three pieces, mirroring the paper's throughput methodology (Figs. 7-10
/// are entirely about *where time goes*):
///
///  1. StageTelemetry — the one value type holding what a codec stage
///     reports about itself (wall/modeled seconds, the Fig.-7
///     {init, kernel, memcpy, free} breakdown, host-fallback and
///     device-retry facts). CompressResult / DecompressResult / RunOutput /
///     CBenchResult all embed it instead of re-declaring the fields.
///
///  2. Span tracing — TRACE_SPAN("zfp.encode") RAII scopes recording into a
///     lock-free ring buffer, exported as Chrome trace_event JSON
///     (chrome://tracing, Perfetto). Off by default: a disabled span costs
///     one relaxed atomic load, streams and modeled GPU timings are
///     byte-identical whether tracing is on or off.
///
///  3. MetricsRegistry — named counters / gauges / histograms (bytes
///     in/out, device retries, host fallbacks, arena high-water, sweep
///     queue wait), exported as JSON by `foresight_cli run --metrics-out`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cosmo {

/// Fig. 7's four components, in seconds. (Historically gpu::TimingBreakdown;
/// gpu/sim.hpp keeps that name as an alias.)
struct TimingBreakdown {
  double init = 0.0;    ///< parameter upload + device allocation
  double kernel = 0.0;  ///< (de)compression kernel
  double memcpy = 0.0;  ///< compressed-data transfer over PCIe
  double free = 0.0;    ///< device deallocation

  [[nodiscard]] double total() const { return init + kernel + memcpy + free; }
};

/// Everything one codec stage (a compress or a decompress) reports about
/// its own execution. Result objects are reused across sweep iterations, so
/// stages must call one of the reset helpers up front instead of relying on
/// the member defaults.
struct StageTelemetry {
  double seconds = 0.0;  ///< measured (CPU) or modeled total (GPU)
  bool has_gpu_timing = false;
  TimingBreakdown gpu_timing;  ///< valid only when has_gpu_timing
  /// Device-OOM degraded this stage to the matching host codec: the stream
  /// is bit-identical, seconds is measured host wall time.
  bool cpu_fallback = false;
  int device_attempts = 1;  ///< device attempts incl. transient-fault retries

  /// Resets to the measured-CPU defaults (seconds left for the stage to set).
  void reset_cpu() { *this = StageTelemetry{}; }

  /// Resets to the modeled-GPU defaults.
  void reset_gpu() {
    *this = StageTelemetry{};
    has_gpu_timing = true;
  }

  /// Records a modeled device execution.
  void set_device(const TimingBreakdown& timing, int attempts) {
    has_gpu_timing = true;
    cpu_fallback = false;
    gpu_timing = timing;
    seconds = timing.total();
    device_attempts = attempts;
  }

  /// Degrades a GPU stage to its host codec (seconds set by the caller from
  /// a wall-clock timer; the modeled breakdown no longer applies).
  void mark_cpu_fallback() {
    has_gpu_timing = false;
    gpu_timing = TimingBreakdown{};
    cpu_fallback = true;
  }
};

/// Cross-stage rollups for a (compress, decompress) pair folded into one row.
[[nodiscard]] inline bool any_cpu_fallback(const StageTelemetry& c, const StageTelemetry& d) {
  return c.cpu_fallback || d.cpu_fallback;
}
[[nodiscard]] inline int max_device_attempts(const StageTelemetry& c,
                                             const StageTelemetry& d) {
  return c.device_attempts > d.device_attempts ? c.device_attempts : d.device_attempts;
}

namespace telemetry {

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

/// One completed span. `name` must be a string literal (the tracer stores
/// the pointer, not a copy). Times are nanoseconds since Tracer::enable().
struct SpanRecord {
  const char* name = nullptr;
  std::uint32_t tid = 0;    ///< dense per-thread index (first span wins 0)
  std::uint32_t depth = 0;  ///< nesting depth at entry (0 = top level)
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t seq = 0;  ///< global completion sequence number
};

/// Process-wide span recorder. Disabled by default; while disabled a
/// TRACE_SPAN costs one relaxed atomic load and records nothing, so the
/// instrumented hot paths stay byte- and timing-identical to uninstrumented
/// code (the <1% overhead contract bench_report --trace-overhead measures).
///
/// Recording is thread-safe and lock-free (atomic cursor into a fixed ring;
/// the oldest spans are overwritten once the ring wraps — see dropped()).
/// snapshot() / chrome_trace_json() are meant for quiescent points (after a
/// sweep returns); they are not synchronized against concurrent recorders.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  /// Starts recording into a fresh ring of \p capacity spans and resets the
  /// clock. Safe to call when already enabled (re-arms with a fresh ring).
  static void enable(std::size_t capacity = kDefaultCapacity);

  /// Stops recording. The buffer is kept, so snapshot()/export still work.
  static void disable();

  [[nodiscard]] static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Drops all recorded spans (keeps the enabled state and capacity).
  static void clear();

  /// Completed spans in start-time order.
  [[nodiscard]] static std::vector<SpanRecord> snapshot();

  /// Spans lost to ring wrap-around since enable()/clear().
  [[nodiscard]] static std::size_t dropped();

  /// Chrome trace_event JSON ("X" complete events; load in chrome://tracing
  /// or Perfetto). Each event carries args.depth for nesting validation.
  [[nodiscard]] static std::string chrome_trace_json();

 private:
  friend class SpanScope;
  static std::atomic<bool>& enabled_flag();
  static std::uint64_t now_ns();
  static void record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                     std::uint32_t depth);
};

/// RAII span. Constructed with a string-literal name; records on destruction
/// when tracing was enabled at entry. Use via TRACE_SPAN.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (Tracer::enabled()) begin(name);
  }
  ~SpanScope() {
    if (name_ != nullptr) end();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Monotonic counter (events, bytes).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge with a high-water mark (arena capacity, queue depth).
class Gauge {
 public:
  void set(std::int64_t v);
  /// Raises the high-water mark without touching the last value.
  void maximize(std::int64_t v);
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Log2-bucketed histogram over unsigned values. Durations are observed in
/// nanoseconds (observe_seconds converts), so bucket i holds observations
/// with bit-width i, and the JSON export reports count/sum/max plus the
/// non-empty buckets.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(v) in [0, 64]

  void observe(std::uint64_t v);
  void observe_seconds(double seconds);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Process-wide named-metric registry. Lookup takes a mutex; hot call sites
/// cache the returned reference (metric objects have stable addresses for
/// the process lifetime). Values are always recorded — the atomics are cheap
/// enough to leave on — and reset() exists so tests can scope assertions.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with sorted
  /// keys (deterministic output for tests and diffing).
  [[nodiscard]] std::string to_json() const;

  /// Zeroes every registered metric (names stay registered).
  void reset();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace telemetry
}  // namespace cosmo

// Two-step expansion so __LINE__ produces distinct variable names when two
// spans open in one scope.
#define COSMO_TRACE_CONCAT2(a, b) a##b
#define COSMO_TRACE_CONCAT(a, b) COSMO_TRACE_CONCAT2(a, b)

/// Opens an RAII trace span covering the rest of the enclosing scope.
/// \p name must be a string literal (the tracer keeps the pointer).
#define TRACE_SPAN(name) \
  ::cosmo::telemetry::SpanScope COSMO_TRACE_CONCAT(cosmo_trace_span_, __LINE__)(name)
