/// \file timer.hpp
/// \brief Wall-clock timing utilities for throughput measurement.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace cosmo {

/// Monotonic wall-clock stopwatch.
///
/// Used for measuring real codec execution time (Fig. 8 CPU results). The
/// simulated-GPU timings in src/gpu use an analytic model instead.
class Timer {
 public:
  Timer() { reset(); }

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates repeated measurements of one quantity and reports
/// average / standard deviation, mirroring the paper's methodology
/// (Section V-C: 10 warm-up runs, then average and stddev over repeats).
class RunningStats {
 public:
  /// Adds one sample.
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford accumulator
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Converts a (bytes, seconds) pair to GB/s; returns 0 when seconds == 0.
double throughput_gbps(std::uint64_t bytes, double seconds);

}  // namespace cosmo
