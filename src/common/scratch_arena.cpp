#include "common/scratch_arena.hpp"

#include <algorithm>

#include "common/telemetry.hpp"

namespace cosmo {

namespace {

template <typename T>
ArenaLease<T> acquire(ScratchArena* arena,
                      std::vector<std::unique_ptr<std::vector<T>>>& pool,
                      ScratchArena::Stats& stats, std::size_t& leased_bytes) {
  ++stats.requests;
  std::unique_ptr<std::vector<T>> buf;
  if (!pool.empty()) {
    buf = std::move(pool.back());
    pool.pop_back();
    ++stats.reuses;
    --stats.pooled_buffers;
    stats.pooled_bytes -= buf->capacity() * sizeof(T);
    leased_bytes += buf->capacity() * sizeof(T);
  } else {
    buf = std::make_unique<std::vector<T>>();
  }
  return ArenaLease<T>(arena, std::move(buf));
}

}  // namespace

ArenaLease<float> ScratchArena::floats() {
  return acquire<float>(this, float_pool_, stats_, leased_bytes_);
}

ArenaLease<std::uint8_t> ScratchArena::bytes() {
  return acquire<std::uint8_t>(this, byte_pool_, stats_, leased_bytes_);
}

ArenaLease<std::int32_t> ScratchArena::ints() {
  return acquire<std::int32_t>(this, int_pool_, stats_, leased_bytes_);
}

void ScratchArena::account_release(std::size_t capacity_bytes) {
  // The buffer may have grown (or been handed out fresh) while leased, so
  // the leased-bytes estimate is clamped rather than strictly decremented.
  leased_bytes_ -= std::min(leased_bytes_, capacity_bytes);
  stats_.pooled_bytes += capacity_bytes;
  ++stats_.pooled_buffers;
  stats_.high_water_bytes =
      std::max(stats_.high_water_bytes, stats_.pooled_bytes + leased_bytes_);
  telemetry::MetricsRegistry::instance()
      .gauge("arena.high_water_bytes")
      .maximize(static_cast<std::int64_t>(stats_.high_water_bytes));
}

void ScratchArena::release(std::unique_ptr<std::vector<float>> buf) {
  account_release(buf->capacity() * sizeof(float));
  float_pool_.push_back(std::move(buf));
}

void ScratchArena::release(std::unique_ptr<std::vector<std::uint8_t>> buf) {
  account_release(buf->capacity());
  byte_pool_.push_back(std::move(buf));
}

void ScratchArena::release(std::unique_ptr<std::vector<std::int32_t>> buf) {
  account_release(buf->capacity() * sizeof(std::int32_t));
  int_pool_.push_back(std::move(buf));
}

void ScratchArena::trim() {
  float_pool_.clear();
  byte_pool_.clear();
  int_pool_.clear();
  stats_.pooled_buffers = 0;
  stats_.pooled_bytes = 0;
}

}  // namespace cosmo
