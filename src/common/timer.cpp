#include "common/timer.hpp"

#include <algorithm>
#include <cmath>

namespace cosmo {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double throughput_gbps(std::uint64_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / seconds / 1e9;
}

}  // namespace cosmo
