/// \file env.hpp
/// \brief Environment-variable overrides for experiment scale.
///
/// The paper runs on 512^3 Nyx grids and 1.07e9-particle HACC snapshots;
/// this reproduction defaults to container-friendly sizes and lets users
/// scale back up via REPRO_NYX_DIM / REPRO_HACC_N.
#pragma once

#include <cstddef>
#include <string>

namespace cosmo {

/// Reads an integer environment variable, returning \p fallback when unset
/// or unparsable.
std::size_t env_size(const char* name, std::size_t fallback);

/// Reads a string environment variable with fallback.
std::string env_string(const char* name, const std::string& fallback);

/// Default Nyx grid edge for benches/examples (REPRO_NYX_DIM, default 128).
std::size_t default_nyx_dim();

/// Default HACC particle count for benches/examples (REPRO_HACC_N, default 1'000'000).
std::size_t default_hacc_particles();

}  // namespace cosmo
