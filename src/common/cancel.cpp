#include "common/cancel.hpp"

#include <limits>
#include <string>

namespace cosmo {

double CancelToken::remaining_seconds() const {
  if (!state_->has_deadline) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(state_->deadline - Clock::now()).count();
}

void CancelToken::check(const char* what) const {
  if (cancelled()) throw CancelledError(std::string(what) + ": cancelled");
  if (deadline_expired()) {
    throw DeadlineExceededError(std::string(what) + ": deadline exceeded");
  }
}

}  // namespace cosmo
