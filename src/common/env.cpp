#include "common/env.hpp"

#include <cstdlib>

namespace cosmo {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : fallback;
}

std::size_t default_nyx_dim() { return env_size("REPRO_NYX_DIM", 128); }

std::size_t default_hacc_particles() { return env_size("REPRO_HACC_N", 1000000); }

}  // namespace cosmo
