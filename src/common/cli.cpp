#include "common/cli.hpp"

#include <cstdlib>

#include "common/str.hpp"

namespace cosmo {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "1";
    }
  }
}

bool CliArgs::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& key, long fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace cosmo
