#include "analysis/power_spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/telemetry.hpp"
#include "fft/fft.hpp"

namespace cosmo::analysis {

namespace {

double freq(std::size_t i, std::size_t n) {
  const auto s = static_cast<double>(i);
  const auto nn = static_cast<double>(n);
  return i <= n / 2 ? s : s - nn;
}

}  // namespace

std::vector<PkBin> power_spectrum(std::span<const float> values, const Dims& dims,
                                  std::size_t nbins, ThreadPool* pool) {
  TRACE_SPAN("analysis.power_spectrum");
  require(dims.rank() == 3, "power_spectrum: field must be 3-D");
  require(values.size() == dims.count(), "power_spectrum: size mismatch");
  if (nbins == 0) nbins = dims.nx / 2;
  require(nbins >= 2, "power_spectrum: need at least 2 bins");

  // Mean-subtract (the spectrum of fluctuations, not the DC offset).
  // Per-z-slice partial sums reduced in fixed z order: the slice geometry
  // never depends on the thread count, so the mean is bitwise identical to
  // the serial z-major accumulation.
  const std::size_t slice = dims.nx * dims.ny;
  std::vector<double> slice_sum(dims.nz, 0.0);
  std::vector<cplx> grid(values.size());
  parallel_for(pool, dims.nz, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t z = lo; z < hi; ++z) {
      double s = 0.0;
      for (std::size_t i = z * slice; i < (z + 1) * slice; ++i) s += values[i];
      slice_sum[z] = s;
    }
  }, /*min_grain=*/1);
  double mean = 0.0;
  for (const double s : slice_sum) mean += s;
  mean /= static_cast<double>(values.size());
  parallel_for(pool, dims.nz, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo * slice; i < hi * slice; ++i) {
      grid[i] = cplx(values[i] - mean, 0.0);
    }
  }, /*min_grain=*/1);
  fft_3d(grid, dims, /*inverse=*/false, pool);

  const double k_nyq = static_cast<double>(dims.nx) / 2.0;
  std::vector<PkBin> bins(nbins);
  std::vector<double> ksum(nbins, 0.0);
  const double norm = 1.0 / static_cast<double>(values.size());

  // Radial binning via per-z-slice partial accumulators, again reduced in
  // fixed z order for thread-count-independent floating-point totals.
  struct SliceBins {
    std::vector<double> power, ksum;
    std::vector<std::size_t> modes;
  };
  std::vector<SliceBins> partial(dims.nz);
  parallel_for(pool, dims.nz, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t z = lo; z < hi; ++z) {
      SliceBins& sb = partial[z];
      sb.power.assign(nbins, 0.0);
      sb.ksum.assign(nbins, 0.0);
      sb.modes.assign(nbins, 0);
      const double kz = freq(z, dims.nz);
      for (std::size_t y = 0; y < dims.ny; ++y) {
        const double ky = freq(y, dims.ny);
        for (std::size_t x = 0; x < dims.nx; ++x) {
          const double kx = freq(x, dims.nx);
          const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
          if (k <= 0.0 || k >= k_nyq) continue;
          const auto b = std::min(
              nbins - 1, static_cast<std::size_t>(k / k_nyq * static_cast<double>(nbins)));
          const cplx f = grid[dims.index(x, y, z)] * norm;
          sb.power[b] += std::norm(f);
          sb.ksum[b] += k;
          ++sb.modes[b];
        }
      }
    }
  }, /*min_grain=*/1);
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t b = 0; b < nbins; ++b) {
      bins[b].power += partial[z].power[b];
      ksum[b] += partial[z].ksum[b];
      bins[b].modes += partial[z].modes[b];
    }
  }
  for (std::size_t b = 0; b < nbins; ++b) {
    if (bins[b].modes > 0) {
      bins[b].power /= static_cast<double>(bins[b].modes);
      bins[b].k = ksum[b] / static_cast<double>(bins[b].modes);
    }
  }
  // Drop empty bins.
  std::vector<PkBin> out;
  out.reserve(bins.size());
  for (const auto& b : bins) {
    if (b.modes > 0) out.push_back(b);
  }
  return out;
}

PkRatio pk_ratio(std::span<const float> original, std::span<const float> reconstructed,
                 const Dims& dims, double k_fraction, ThreadPool* pool) {
  return pk_ratio(power_spectrum(original, dims, 0, pool), reconstructed, dims,
                  k_fraction, pool);
}

PkRatio pk_ratio(const std::vector<PkBin>& pk_o, std::span<const float> reconstructed,
                 const Dims& dims, double k_fraction, ThreadPool* pool) {
  const auto pk_r = power_spectrum(reconstructed, dims, 0, pool);
  require(pk_o.size() == pk_r.size(), "pk_ratio: binning mismatch");

  const double k_max = k_fraction * static_cast<double>(dims.nx) / 2.0;
  PkRatio out;
  for (std::size_t i = 0; i < pk_o.size(); ++i) {
    if (pk_o[i].k > k_max) break;
    const double r = pk_o[i].power > 0.0 ? pk_r[i].power / pk_o[i].power : 1.0;
    out.k.push_back(pk_o[i].k);
    out.ratio.push_back(r);
    out.max_deviation = std::max(out.max_deviation, std::fabs(r - 1.0));
  }
  return out;
}

bool pk_acceptable(const PkRatio& r, double tolerance) {
  return r.max_deviation <= tolerance;
}

}  // namespace cosmo::analysis
