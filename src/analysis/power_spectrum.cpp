#include "analysis/power_spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "fft/fft.hpp"

namespace cosmo::analysis {

namespace {

double freq(std::size_t i, std::size_t n) {
  const auto s = static_cast<double>(i);
  const auto nn = static_cast<double>(n);
  return i <= n / 2 ? s : s - nn;
}

}  // namespace

std::vector<PkBin> power_spectrum(std::span<const float> values, const Dims& dims,
                                  std::size_t nbins) {
  require(dims.rank() == 3, "power_spectrum: field must be 3-D");
  require(values.size() == dims.count(), "power_spectrum: size mismatch");
  if (nbins == 0) nbins = dims.nx / 2;
  require(nbins >= 2, "power_spectrum: need at least 2 bins");

  // Mean-subtract (the spectrum of fluctuations, not the DC offset).
  double mean = 0.0;
  for (const float v : values) mean += v;
  mean /= static_cast<double>(values.size());
  std::vector<cplx> grid(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) grid[i] = cplx(values[i] - mean, 0.0);
  fft_3d(grid, dims, /*inverse=*/false);

  const double k_nyq = static_cast<double>(dims.nx) / 2.0;
  std::vector<PkBin> bins(nbins);
  std::vector<double> ksum(nbins, 0.0);
  const double norm = 1.0 / static_cast<double>(values.size());

  for (std::size_t z = 0; z < dims.nz; ++z) {
    const double kz = freq(z, dims.nz);
    for (std::size_t y = 0; y < dims.ny; ++y) {
      const double ky = freq(y, dims.ny);
      for (std::size_t x = 0; x < dims.nx; ++x) {
        const double kx = freq(x, dims.nx);
        const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
        if (k <= 0.0 || k >= k_nyq) continue;
        const auto b = std::min(nbins - 1,
                                static_cast<std::size_t>(k / k_nyq * static_cast<double>(nbins)));
        const cplx f = grid[dims.index(x, y, z)] * norm;
        bins[b].power += std::norm(f);
        ksum[b] += k;
        ++bins[b].modes;
      }
    }
  }
  for (std::size_t b = 0; b < nbins; ++b) {
    if (bins[b].modes > 0) {
      bins[b].power /= static_cast<double>(bins[b].modes);
      bins[b].k = ksum[b] / static_cast<double>(bins[b].modes);
    }
  }
  // Drop empty bins.
  std::vector<PkBin> out;
  out.reserve(bins.size());
  for (const auto& b : bins) {
    if (b.modes > 0) out.push_back(b);
  }
  return out;
}

PkRatio pk_ratio(std::span<const float> original, std::span<const float> reconstructed,
                 const Dims& dims, double k_fraction) {
  const auto pk_o = power_spectrum(original, dims);
  const auto pk_r = power_spectrum(reconstructed, dims);
  require(pk_o.size() == pk_r.size(), "pk_ratio: binning mismatch");

  const double k_max = k_fraction * static_cast<double>(dims.nx) / 2.0;
  PkRatio out;
  for (std::size_t i = 0; i < pk_o.size(); ++i) {
    if (pk_o[i].k > k_max) break;
    const double r = pk_o[i].power > 0.0 ? pk_r[i].power / pk_o[i].power : 1.0;
    out.k.push_back(pk_o[i].k);
    out.ratio.push_back(r);
    out.max_deviation = std::max(out.max_deviation, std::fabs(r - 1.0));
  }
  return out;
}

bool pk_acceptable(const PkRatio& r, double tolerance) {
  return r.max_deviation <= tolerance;
}

}  // namespace cosmo::analysis
