/// \file ssim.hpp
/// \brief Structural similarity index for 3-D scalar fields.
///
/// The paper points at climate's SSIM-based methodology ([20]) as the model
/// for domain-specific evaluation; we provide SSIM as an additional CBench
/// metric so the framework covers that use case too. Windowed mean SSIM
/// with the standard (K1, K2) stabilizers, over non-overlapping cubic
/// windows.
#pragma once

#include <span>

#include "common/field.hpp"

namespace cosmo::analysis {

struct SsimParams {
  std::size_t window = 8;  ///< cubic window edge (clamped to the field)
  double k1 = 0.01;
  double k2 = 0.03;
};

/// Mean SSIM between two equally shaped fields. The dynamic range L is the
/// original's value range. Returns 1.0 for identical inputs.
double ssim(std::span<const float> original, std::span<const float> reconstructed,
            const Dims& dims, const SsimParams& params = {});

}  // namespace cosmo::analysis
