#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cosmo::analysis {

Distortion compare(std::span<const float> original, std::span<const float> reconstructed) {
  require(original.size() == reconstructed.size(), "stats: size mismatch");
  require(!original.empty(), "stats: empty input");
  const std::size_t n = original.size();

  double sum_o = 0.0, sum_r = 0.0;
  double min_o = original[0], max_o = original[0];
  double sum_sq_err = 0.0, sum_abs_err = 0.0;
  double max_abs = 0.0, max_rel = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double o = original[i];
    const double r = reconstructed[i];
    const double e = r - o;
    sum_o += o;
    sum_r += r;
    min_o = std::min(min_o, o);
    max_o = std::max(max_o, o);
    sum_sq_err += e * e;
    sum_abs_err += std::fabs(e);
    max_abs = std::max(max_abs, std::fabs(e));
    if (std::fabs(o) > 1e-30) {
      max_rel = std::max(max_rel, std::fabs(e) / std::fabs(o));
    }
  }
  const double mean_o = sum_o / static_cast<double>(n);
  const double mean_r = sum_r / static_cast<double>(n);

  double cov = 0.0, var_o = 0.0, var_r = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double doo = original[i] - mean_o;
    const double drr = reconstructed[i] - mean_r;
    cov += doo * drr;
    var_o += doo * doo;
    var_r += drr * drr;
  }

  Distortion d;
  d.mse = sum_sq_err / static_cast<double>(n);
  d.rmse = std::sqrt(d.mse);
  const double range = max_o - min_o;
  d.nrmse = range > 0.0 ? d.rmse / range : d.rmse;
  d.psnr_db = d.rmse > 0.0 && range > 0.0
                  ? 20.0 * std::log10(range / d.rmse)
                  : 999.0;  // lossless sentinel
  d.mre = range > 0.0 ? (sum_abs_err / static_cast<double>(n)) / range
                      : sum_abs_err / static_cast<double>(n);
  d.max_abs_err = max_abs;
  d.max_rel_err = max_rel;
  d.pearson_r = (var_o > 0.0 && var_r > 0.0) ? cov / std::sqrt(var_o * var_r) : 1.0;
  return d;
}

double psnr_db(std::span<const float> original, std::span<const float> reconstructed) {
  return compare(original, reconstructed).psnr_db;
}

double compression_ratio(std::size_t original_bytes, std::size_t compressed_bytes) {
  require(compressed_bytes > 0, "compression_ratio: zero compressed size");
  return static_cast<double>(original_bytes) / static_cast<double>(compressed_bytes);
}

double bit_rate_for_ratio(double ratio) {
  require(ratio > 0.0, "bit_rate_for_ratio: ratio must be positive");
  return 32.0 / ratio;
}

}  // namespace cosmo::analysis
