/// \file stats.hpp
/// \brief General distortion metrics (paper Metric 2 and CBench outputs):
/// PSNR, MSE, NRMSE, MRE, maximum absolute/relative error, Pearson r.
#pragma once

#include <span>

namespace cosmo::analysis {

/// All pairwise distortion metrics between an original and a reconstruction.
struct Distortion {
  double mse = 0.0;        ///< mean squared error
  double rmse = 0.0;       ///< sqrt(mse)
  double nrmse = 0.0;      ///< rmse / (max - min of original)
  double psnr_db = 0.0;    ///< 20 log10((max-min) / rmse)
  double mre = 0.0;        ///< mean |err| / value-range (SZ convention)
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;  ///< max |err| / |original| over |orig| > eps
  double pearson_r = 0.0;  ///< correlation coefficient
};

/// Computes every metric in one pass; inputs must be the same length and
/// non-empty.
Distortion compare(std::span<const float> original, std::span<const float> reconstructed);

/// PSNR alone (dB), range-based like SZ's assessment tooling.
double psnr_db(std::span<const float> original, std::span<const float> reconstructed);

/// Compressed-size ratio helper: original bytes / compressed bytes.
double compression_ratio(std::size_t original_bytes, std::size_t compressed_bytes);

/// Bits per value for float32 inputs under the given ratio.
double bit_rate_for_ratio(double compression_ratio);

}  // namespace cosmo::analysis
