/// \file power_spectrum.hpp
/// \brief Matter power spectrum P(k) and the pk-ratio acceptance test.
///
/// Paper Metric 3b: "The Fourier transform of xi(r) is called the matter
/// power spectrum P(k)". Fig. 5 plots, per field, the ratio of the spectrum
/// of reconstructed data to that of the original, with the acceptance band
/// 1 +/- 1%. This module computes the radially binned spectrum with our FFT
/// and implements exactly that test.
#pragma once

#include <span>
#include <vector>

#include "common/field.hpp"
#include "common/thread_pool.hpp"

namespace cosmo::analysis {

/// One radial bin of the spectrum.
struct PkBin {
  double k = 0.0;      ///< mean wavenumber of the bin (grid frequency units)
  double power = 0.0;  ///< mean |F|^2 over modes in the bin
  std::size_t modes = 0;
};

/// Radially binned power spectrum of a 3-D scalar field. \p nbins == 0
/// selects nx/2 bins (up to the Nyquist frequency). Threads on \p pool: the
/// FFT is pencil-parallel and the radial binning accumulates into per-z-
/// slice partials reduced in fixed z order, so the result is bitwise
/// identical for any thread count.
std::vector<PkBin> power_spectrum(std::span<const float> values, const Dims& dims,
                                  std::size_t nbins = 0, ThreadPool* pool = nullptr);

/// Per-bin ratio P_reconstructed / P_original, aligned on the original's
/// binning; bins with no power in the original are skipped (ratio = 1).
struct PkRatio {
  std::vector<double> k;
  std::vector<double> ratio;
  double max_deviation = 0.0;  ///< max |ratio - 1| over evaluated bins
};

/// Computes the Fig. 5 curve for one field.
/// \p k_fraction restricts the test to k <= k_fraction * k_nyquist, since
/// the paper's acceptance reads the physically meaningful scales.
PkRatio pk_ratio(std::span<const float> original, std::span<const float> reconstructed,
                 const Dims& dims, double k_fraction = 1.0, ThreadPool* pool = nullptr);

/// pk_ratio against a precomputed original-field spectrum (the default-nbins
/// power_spectrum of the original). The original FFT is the expensive half
/// of every ratio and never changes across candidates, so the optimizer and
/// the pipeline compute it once per field and reuse it here.
PkRatio pk_ratio(const std::vector<PkBin>& pk_original, std::span<const float> reconstructed,
                 const Dims& dims, double k_fraction = 1.0, ThreadPool* pool = nullptr);

/// The paper's acceptance test: every evaluated bin within 1 +/- tolerance
/// (tolerance = 0.01 for the 1% band).
bool pk_acceptable(const PkRatio& r, double tolerance = 0.01);

}  // namespace cosmo::analysis
