/// \file fof.hpp
/// \brief Friends-of-Friends dark matter halo finder (paper Metric 3a).
///
/// "we connect each particle to all 'friends' within a distance, with a
/// group of particles in one chain considered as one halo." Implemented
/// with a linked-cell grid (cell edge = linking length) and union-find,
/// periodic boundaries. Also computes the paper's Most Connected Particle
/// (most friends) and Most Bound Particle (lowest potential) per halo on
/// request.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"

namespace cosmo::analysis {

/// Union-find with path compression + union by size.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n);

  std::size_t find(std::size_t i);
  /// Returns true when the two sets were distinct (a merge happened).
  bool unite(std::size_t a, std::size_t b);
  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> rank_;
};

struct FofParams {
  double linking_length = 1.0;   ///< FoF linking distance b
  std::size_t min_members = 10;  ///< groups below this are not halos
  double box = 256.0;            ///< periodic box edge
  bool periodic = true;
  /// Compute Most Connected Particle (costs a full pair enumeration).
  bool most_connected = false;
  /// Compute Most Bound Particle (pairwise potential, sampled above
  /// potential_sample_cap members).
  bool most_bound = false;
  std::size_t potential_sample_cap = 2000;
};

struct Halo {
  std::size_t members = 0;
  double cx = 0.0, cy = 0.0, cz = 0.0;  ///< center of mass (box-wrapped)
  /// Particle indices; only valid when the corresponding FofParams flag is set.
  std::size_t most_connected_particle = 0;
  std::size_t most_bound_particle = 0;
};

struct FofResult {
  /// Halo index per particle, or -1 when the particle is unbound / in a
  /// group below min_members. Halos are ordered by their smallest member
  /// index, so the ordering is a function of the input alone.
  std::vector<std::int32_t> halo_of_particle;
  std::vector<Halo> halos;
  /// Cells per box edge the linked-cell grid actually used. Smaller than
  /// floor(box / linking_length) when the particle-count-derived cap bound
  /// (coarser cells stay correct — the 27-neighbor search only needs
  /// cell_size >= linking_length — but scan more candidates).
  std::size_t grid_edge_cells = 0;
};

/// Runs FoF over particle coordinates (equal lengths). Threads on \p pool:
/// candidate friend pairs are collected per z-slab of the cell grid (fixed
/// slab geometry), then fed to the union-find serially in slab order, so
/// the partition — and every downstream reduction — is identical for any
/// thread count.
FofResult fof(std::span<const float> x, std::span<const float> y,
              std::span<const float> z, const FofParams& params,
              ThreadPool* pool = nullptr);

}  // namespace cosmo::analysis
