#include "analysis/ssim.hpp"

#include <algorithm>
#include <cmath>

namespace cosmo::analysis {

double ssim(std::span<const float> original, std::span<const float> reconstructed,
            const Dims& dims, const SsimParams& params) {
  require(original.size() == reconstructed.size(), "ssim: size mismatch");
  require(original.size() == dims.count(), "ssim: dims mismatch");
  require(!original.empty(), "ssim: empty input");

  const auto [lo, hi] = value_range(original);
  const double range = static_cast<double>(hi) - lo;
  const double L = range > 0.0 ? range : 1.0;
  const double c1 = (params.k1 * L) * (params.k1 * L);
  const double c2 = (params.k2 * L) * (params.k2 * L);

  const std::size_t w = std::max<std::size_t>(
      2, std::min({params.window, dims.nx, dims.ny, dims.nz == 1 ? params.window : dims.nz}));

  double total = 0.0;
  std::size_t windows = 0;
  const std::size_t wz = dims.nz > 1 ? w : 1;
  for (std::size_t z0 = 0; z0 < dims.nz; z0 += wz) {
    for (std::size_t y0 = 0; y0 < dims.ny; y0 += w) {
      for (std::size_t x0 = 0; x0 < dims.nx; x0 += w) {
        const std::size_t x1 = std::min(x0 + w, dims.nx);
        const std::size_t y1 = std::min(y0 + w, dims.ny);
        const std::size_t z1 = std::min(z0 + wz, dims.nz);
        double sum_a = 0.0, sum_b = 0.0, sum_aa = 0.0, sum_bb = 0.0, sum_ab = 0.0;
        std::size_t n = 0;
        for (std::size_t z = z0; z < z1; ++z) {
          for (std::size_t y = y0; y < y1; ++y) {
            for (std::size_t x = x0; x < x1; ++x) {
              const double a = original[dims.index(x, y, z)];
              const double b = reconstructed[dims.index(x, y, z)];
              sum_a += a;
              sum_b += b;
              sum_aa += a * a;
              sum_bb += b * b;
              sum_ab += a * b;
              ++n;
            }
          }
        }
        const double inv = 1.0 / static_cast<double>(n);
        const double mu_a = sum_a * inv;
        const double mu_b = sum_b * inv;
        const double var_a = std::max(0.0, sum_aa * inv - mu_a * mu_a);
        const double var_b = std::max(0.0, sum_bb * inv - mu_b * mu_b);
        const double cov = sum_ab * inv - mu_a * mu_b;
        const double s = ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2)) /
                         ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
        total += s;
        ++windows;
      }
    }
  }
  return total / static_cast<double>(windows);
}

}  // namespace cosmo::analysis
