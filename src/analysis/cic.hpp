/// \file cic.hpp
/// \brief Cloud-in-cell deposition of particles onto a density grid.
///
/// Bridges the HACC particle representation to grid-based analyses: the
/// particle power spectrum is computed by depositing positions with CIC
/// and running the grid power spectrum (the standard N-body pipeline).
#pragma once

#include <span>

#include "common/field.hpp"

namespace cosmo::analysis {

/// Deposits \p n particles with positions (x, y, z) in [0, box) onto a
/// grid of the given edge, with periodic wrapping. Returns the density
/// contrast field delta = rho/mean(rho) - 1.
Field cic_deposit(std::span<const float> x, std::span<const float> y,
                  std::span<const float> z, double box, std::size_t grid_edge);

}  // namespace cosmo::analysis
