/// \file cic.hpp
/// \brief Cloud-in-cell deposition of particles onto a density grid.
///
/// Bridges the HACC particle representation to grid-based analyses: the
/// particle power spectrum is computed by depositing positions with CIC
/// and running the grid power spectrum (the standard N-body pipeline).
#pragma once

#include <span>

#include "common/field.hpp"
#include "common/thread_pool.hpp"

namespace cosmo::analysis {

/// Deposits \p n particles with positions (x, y, z) in [0, box) onto a
/// grid of the given edge, with periodic wrapping. Returns the density
/// contrast field delta = rho/mean(rho) - 1. Threads on \p pool as a
/// gather: particles are counting-sorted into per-cell CSR lists, then each
/// output cell sums its 8 contributing base cells in fixed neighbor-then-
/// particle order — write-disjoint and bitwise identical for any thread
/// count (a parallel scatter would race and reorder the FP sums).
Field cic_deposit(std::span<const float> x, std::span<const float> y,
                  std::span<const float> z, double box, std::size_t grid_edge,
                  ThreadPool* pool = nullptr);

}  // namespace cosmo::analysis
