/// \file decimation.hpp
/// \brief The decimation baseline the paper argues against.
///
/// "the data are usually saved using a process known as decimation.
/// Decimation stores one snapshot every other time step ... This process
/// can lead to a loss of valuable simulation information" (paper
/// Section I). This module implements temporal decimation with linear
/// interpolation reconstruction, so the motivation claim — error-bounded
/// lossy compression achieves much higher ratio at the same distortion —
/// can be measured instead of assumed (bench_ablation_decimation).
#pragma once

#include <vector>

#include "common/field.hpp"

namespace cosmo::analysis {

/// Result of decimating a snapshot sequence.
struct DecimationResult {
  std::vector<Field> reconstructed;  ///< same length as the input sequence
  std::size_t kept_snapshots = 0;
  double storage_ratio = 0.0;  ///< input snapshots / kept snapshots
};

/// Keeps every \p keep_every-th snapshot (always including the first and
/// last) and reconstructs the dropped ones by linear interpolation in time.
/// keep_every == 2 is the paper's "every other time step".
DecimationResult decimate_and_reconstruct(const std::vector<Field>& frames,
                                          std::size_t keep_every);

/// Mean PSNR across a reconstructed sequence vs the original (computed per
/// frame then averaged; frames that match exactly contribute the lossless
/// sentinel and are skipped from the mean).
double sequence_mean_psnr(const std::vector<Field>& original,
                          const std::vector<Field>& reconstructed);

}  // namespace cosmo::analysis
