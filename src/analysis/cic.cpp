#include "analysis/cic.hpp"

#include <cmath>

namespace cosmo::analysis {

Field cic_deposit(std::span<const float> x, std::span<const float> y,
                  std::span<const float> z, double box, std::size_t grid_edge) {
  require(x.size() == y.size() && y.size() == z.size(), "cic: coordinate size mismatch");
  require(box > 0.0, "cic: box must be positive");
  require(grid_edge >= 2, "cic: grid edge must be >= 2");

  const Dims dims = Dims::d3(grid_edge, grid_edge, grid_edge);
  std::vector<double> rho(dims.count(), 0.0);
  const double scale = static_cast<double>(grid_edge) / box;
  const auto n = static_cast<std::size_t>(grid_edge);

  auto wrap = [n](long i) {
    const long m = static_cast<long>(n);
    i %= m;
    return static_cast<std::size_t>(i < 0 ? i + m : i);
  };

  for (std::size_t p = 0; p < x.size(); ++p) {
    // Cell-centered CIC: shift by half a cell so weights are symmetric.
    const double gx = static_cast<double>(x[p]) * scale - 0.5;
    const double gy = static_cast<double>(y[p]) * scale - 0.5;
    const double gz = static_cast<double>(z[p]) * scale - 0.5;
    const long ix = static_cast<long>(std::floor(gx));
    const long iy = static_cast<long>(std::floor(gy));
    const long iz = static_cast<long>(std::floor(gz));
    const double fx = gx - static_cast<double>(ix);
    const double fy = gy - static_cast<double>(iy);
    const double fz = gz - static_cast<double>(iz);
    const double wx[2] = {1.0 - fx, fx};
    const double wy[2] = {1.0 - fy, fy};
    const double wz[2] = {1.0 - fz, fz};
    for (int dz = 0; dz < 2; ++dz) {
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const std::size_t cx = wrap(ix + dx);
          const std::size_t cy = wrap(iy + dy);
          const std::size_t cz = wrap(iz + dz);
          rho[dims.index(cx, cy, cz)] += wx[dx] * wy[dy] * wz[dz];
        }
      }
    }
  }

  const double mean =
      static_cast<double>(x.size()) / static_cast<double>(dims.count());
  Field out("delta_cic", dims);
  for (std::size_t i = 0; i < rho.size(); ++i) {
    out.data[i] = static_cast<float>(rho[i] / mean - 1.0);
  }
  return out;
}

}  // namespace cosmo::analysis
