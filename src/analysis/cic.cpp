#include "analysis/cic.hpp"

#include <cmath>

#include "common/telemetry.hpp"

namespace cosmo::analysis {

Field cic_deposit(std::span<const float> x, std::span<const float> y,
                  std::span<const float> z, double box, std::size_t grid_edge,
                  ThreadPool* pool) {
  TRACE_SPAN("analysis.cic_deposit");
  require(x.size() == y.size() && y.size() == z.size(), "cic: coordinate size mismatch");
  require(box > 0.0, "cic: box must be positive");
  require(grid_edge >= 2, "cic: grid edge must be >= 2");

  const Dims dims = Dims::d3(grid_edge, grid_edge, grid_edge);
  const double scale = static_cast<double>(grid_edge) / box;
  const auto n = static_cast<std::size_t>(grid_edge);
  const std::size_t n_particles = x.size();

  auto wrap = [n](long i) {
    const long m = static_cast<long>(n);
    i %= m;
    return static_cast<std::size_t>(i < 0 ? i + m : i);
  };

  // Phase 1 (parallel, slot-indexed): base cell + cell-centered fractional
  // offsets per particle.
  std::vector<std::uint32_t> cell_of(n_particles);
  std::vector<double> fx(n_particles), fy(n_particles), fz(n_particles);
  parallel_for(pool, n_particles, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      // Cell-centered CIC: shift by half a cell so weights are symmetric.
      const double gx = static_cast<double>(x[p]) * scale - 0.5;
      const double gy = static_cast<double>(y[p]) * scale - 0.5;
      const double gz = static_cast<double>(z[p]) * scale - 0.5;
      const long ix = static_cast<long>(std::floor(gx));
      const long iy = static_cast<long>(std::floor(gy));
      const long iz = static_cast<long>(std::floor(gz));
      fx[p] = gx - static_cast<double>(ix);
      fy[p] = gy - static_cast<double>(iy);
      fz[p] = gz - static_cast<double>(iz);
      cell_of[p] =
          static_cast<std::uint32_t>(dims.index(wrap(ix), wrap(iy), wrap(iz)));
    }
  }, /*min_grain=*/1u << 14);

  // Phase 2 (serial counting sort): CSR particle lists per base cell, filled
  // in ascending particle order so each list's traversal order is fixed.
  std::vector<std::uint32_t> cell_start(dims.count() + 1, 0);
  for (const std::uint32_t c : cell_of) ++cell_start[c + 1];
  for (std::size_t c = 0; c < dims.count(); ++c) cell_start[c + 1] += cell_start[c];
  std::vector<std::uint32_t> cell_particles(n_particles);
  {
    std::vector<std::uint32_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (std::size_t p = 0; p < n_particles; ++p) {
      cell_particles[cursor[cell_of[p]]++] = static_cast<std::uint32_t>(p);
    }
  }

  // Phase 3 (parallel gather): each output cell sums the contributions of
  // the 8 base cells that can touch it, in fixed neighbor-then-CSR order.
  // Scatter would race and make the sum order depend on the schedule; the
  // gather is write-disjoint and deterministic for any thread count.
  const double mean =
      static_cast<double>(n_particles) / static_cast<double>(dims.count());
  Field out("delta_cic", dims);
  parallel_for(pool, dims.count(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      const std::size_t cx = c % n;
      const std::size_t cy = (c / n) % n;
      const std::size_t cz = c / (n * n);
      double rho = 0.0;
      for (int dz = 0; dz < 2; ++dz) {
        const std::size_t bz = wrap(static_cast<long>(cz) - dz);
        for (int dy = 0; dy < 2; ++dy) {
          const std::size_t by = wrap(static_cast<long>(cy) - dy);
          for (int dx = 0; dx < 2; ++dx) {
            const std::size_t bx = wrap(static_cast<long>(cx) - dx);
            const std::size_t b = dims.index(bx, by, bz);
            for (std::uint32_t s = cell_start[b]; s < cell_start[b + 1]; ++s) {
              const std::uint32_t p = cell_particles[s];
              const double wx = dx ? fx[p] : 1.0 - fx[p];
              const double wy = dy ? fy[p] : 1.0 - fy[p];
              const double wz = dz ? fz[p] : 1.0 - fz[p];
              rho += wx * wy * wz;
            }
          }
        }
      }
      out.data[c] = static_cast<float>(rho / mean - 1.0);
    }
  }, /*min_grain=*/1u << 12);
  return out;
}

}  // namespace cosmo::analysis
