/// \file halo_stats.hpp
/// \brief Halo mass function histogramming and the Fig. 6 comparison:
/// halo counts per mass bin on original vs reconstructed data, plus the
/// count ratio curve.
#pragma once

#include <vector>

#include "analysis/fof.hpp"

namespace cosmo::analysis {

/// One logarithmic mass bin of the halo mass function.
struct MassBin {
  double mass_lo = 0.0;     ///< bin lower edge (in particle-count units * mass_per_particle)
  double mass_hi = 0.0;
  std::size_t count = 0;    ///< halos whose mass falls in [lo, hi)
};

/// Histogram of halo masses in logarithmic bins. \p mass_per_particle
/// converts member counts to masses (the paper's x-axis is in Msun/h).
std::vector<MassBin> mass_function(const std::vector<Halo>& halos, double mass_per_particle,
                                   std::size_t nbins, double mass_min, double mass_max);

/// Fig. 6 data: per-bin counts for original and reconstructed catalogs
/// sharing one binning, and their ratio (reconstructed / original).
struct HaloComparison {
  std::vector<MassBin> original;
  std::vector<MassBin> reconstructed;
  std::vector<double> ratio;          ///< per bin; 1.0 when both empty
  double total_ratio = 0.0;           ///< total recon halos / total original halos
  double max_ratio_deviation = 0.0;   ///< max |ratio - 1| over bins with halos
};

/// Builds the comparison with shared log binning derived from the original
/// catalog's mass range.
HaloComparison compare_halo_catalogs(const std::vector<Halo>& original,
                                     const std::vector<Halo>& reconstructed,
                                     double mass_per_particle, std::size_t nbins = 12);

/// Precomputed original-catalog side of a halo comparison: the binning
/// (derived from the original mass range) and the original mass function.
/// Deriving these per candidate repeats identical work — the optimizer and
/// the pipeline build the baseline once per dataset and compare every
/// reconstructed catalog against it.
struct HaloBaseline {
  std::vector<MassBin> original;  ///< original mass function on the shared binning
  double mass_per_particle = 1.0;
  double mass_min = 0.0;          ///< shared binning range (mass_max is inflated
  double mass_max = 0.0;          ///< by 0.1% to include the heaviest halo)
  std::size_t original_halos = 0;
};

/// Builds the reusable original-catalog baseline (same binning rules as the
/// two-catalog compare_halo_catalogs).
HaloBaseline make_halo_baseline(const std::vector<Halo>& original, double mass_per_particle,
                                std::size_t nbins = 12);

/// compare_halo_catalogs against a precomputed baseline; bit-identical to
/// the two-catalog overload for the same inputs.
HaloComparison compare_halo_catalogs(const HaloBaseline& baseline,
                                     const std::vector<Halo>& reconstructed);

/// The paper's acceptance: every populated bin's count ratio within
/// 1 +/- tolerance.
bool halos_acceptable(const HaloComparison& c, double tolerance = 0.01);

/// Fraction of original halos that have a reconstructed halo within
/// \p match_distance of their center (a matching-based quality check used
/// by our extended analysis).
double halo_match_fraction(const std::vector<Halo>& original,
                           const std::vector<Halo>& reconstructed, double match_distance,
                           double box);

}  // namespace cosmo::analysis
