#include "analysis/decimation.hpp"

#include "analysis/stats.hpp"

namespace cosmo::analysis {

DecimationResult decimate_and_reconstruct(const std::vector<Field>& frames,
                                          std::size_t keep_every) {
  require(!frames.empty(), "decimate: no frames");
  require(keep_every >= 1, "decimate: keep_every must be >= 1");
  const std::size_t n = frames.size();

  // Indices of kept snapshots: 0, keep_every, 2*keep_every, ..., n-1.
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < n; i += keep_every) kept.push_back(i);
  if (kept.back() != n - 1) kept.push_back(n - 1);

  DecimationResult result;
  result.kept_snapshots = kept.size();
  result.storage_ratio = static_cast<double>(n) / static_cast<double>(kept.size());
  result.reconstructed.reserve(n);

  std::size_t seg = 0;  // current segment [kept[seg], kept[seg+1]]
  for (std::size_t t = 0; t < n; ++t) {
    while (seg + 1 < kept.size() && t > kept[seg + 1]) ++seg;
    if (t == kept[seg] || (seg + 1 < kept.size() && t == kept[seg + 1])) {
      result.reconstructed.push_back(frames[t]);  // stored exactly
      continue;
    }
    const std::size_t lo = kept[seg];
    const std::size_t hi = kept[seg + 1];
    const float w = static_cast<float>(t - lo) / static_cast<float>(hi - lo);
    Field interp(frames[t].name + "_decimated", frames[t].dims);
    const auto& a = frames[lo].data;
    const auto& b = frames[hi].data;
    for (std::size_t i = 0; i < interp.data.size(); ++i) {
      interp.data[i] = (1.0f - w) * a[i] + w * b[i];
    }
    result.reconstructed.push_back(std::move(interp));
  }
  return result;
}

double sequence_mean_psnr(const std::vector<Field>& original,
                          const std::vector<Field>& reconstructed) {
  require(original.size() == reconstructed.size(), "sequence_mean_psnr: length mismatch");
  require(!original.empty(), "sequence_mean_psnr: empty sequences");
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < original.size(); ++t) {
    const double p = psnr_db(original[t].data, reconstructed[t].data);
    if (p >= 999.0) continue;  // exact frame: excluded from the mean
    sum += p;
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 999.0;
}

}  // namespace cosmo::analysis
