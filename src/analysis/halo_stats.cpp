#include "analysis/halo_stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cosmo::analysis {

std::vector<MassBin> mass_function(const std::vector<Halo>& halos, double mass_per_particle,
                                   std::size_t nbins, double mass_min, double mass_max) {
  require(nbins >= 1, "mass_function: need at least one bin");
  require(mass_min > 0.0 && mass_max > mass_min, "mass_function: bad mass range");
  std::vector<MassBin> bins(nbins);
  const double log_lo = std::log10(mass_min);
  const double log_hi = std::log10(mass_max);
  const double step = (log_hi - log_lo) / static_cast<double>(nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    bins[b].mass_lo = std::pow(10.0, log_lo + step * static_cast<double>(b));
    bins[b].mass_hi = std::pow(10.0, log_lo + step * static_cast<double>(b + 1));
  }
  for (const auto& h : halos) {
    const double m = static_cast<double>(h.members) * mass_per_particle;
    if (m < mass_min || m >= mass_max) continue;
    auto b = static_cast<std::size_t>((std::log10(m) - log_lo) / step);
    b = std::min(b, nbins - 1);
    ++bins[b].count;
  }
  return bins;
}

HaloBaseline make_halo_baseline(const std::vector<Halo>& original, double mass_per_particle,
                                std::size_t nbins) {
  require(!original.empty(), "compare_halo_catalogs: empty original catalog");
  double min_m = 1e300, max_m = 0.0;
  for (const auto& h : original) {
    const double m = static_cast<double>(h.members) * mass_per_particle;
    min_m = std::min(min_m, m);
    max_m = std::max(max_m, m);
  }
  max_m *= 1.001;  // include the heaviest halo in the last bin

  HaloBaseline base;
  base.mass_per_particle = mass_per_particle;
  base.mass_min = min_m;
  base.mass_max = max_m;
  base.original_halos = original.size();
  base.original = mass_function(original, mass_per_particle, nbins, min_m, max_m);
  return base;
}

HaloComparison compare_halo_catalogs(const std::vector<Halo>& original,
                                     const std::vector<Halo>& reconstructed,
                                     double mass_per_particle, std::size_t nbins) {
  return compare_halo_catalogs(make_halo_baseline(original, mass_per_particle, nbins),
                               reconstructed);
}

HaloComparison compare_halo_catalogs(const HaloBaseline& baseline,
                                     const std::vector<Halo>& reconstructed) {
  const std::size_t nbins = baseline.original.size();
  HaloComparison c;
  c.original = baseline.original;
  c.reconstructed = mass_function(reconstructed, baseline.mass_per_particle, nbins,
                                  baseline.mass_min, baseline.mass_max);
  c.ratio.resize(nbins, 1.0);
  for (std::size_t b = 0; b < nbins; ++b) {
    const auto o = c.original[b].count;
    const auto r = c.reconstructed[b].count;
    if (o == 0 && r == 0) {
      c.ratio[b] = 1.0;
      continue;
    }
    c.ratio[b] = o > 0 ? static_cast<double>(r) / static_cast<double>(o)
                       : 2.0;  // spurious halos in an empty bin
    c.max_ratio_deviation = std::max(c.max_ratio_deviation, std::fabs(c.ratio[b] - 1.0));
  }
  c.total_ratio = static_cast<double>(reconstructed.size()) /
                  static_cast<double>(baseline.original_halos);
  return c;
}

bool halos_acceptable(const HaloComparison& c, double tolerance) {
  return c.max_ratio_deviation <= tolerance;
}

double halo_match_fraction(const std::vector<Halo>& original,
                           const std::vector<Halo>& reconstructed, double match_distance,
                           double box) {
  if (original.empty()) return 1.0;
  const double d2max = match_distance * match_distance;
  std::size_t matched = 0;
  for (const auto& o : original) {
    for (const auto& r : reconstructed) {
      double dx = std::fabs(o.cx - r.cx);
      double dy = std::fabs(o.cy - r.cy);
      double dz = std::fabs(o.cz - r.cz);
      dx = std::min(dx, box - dx);
      dy = std::min(dy, box - dy);
      dz = std::min(dz, box - dz);
      if (dx * dx + dy * dy + dz * dz <= d2max) {
        ++matched;
        break;
      }
    }
  }
  return static_cast<double>(matched) / static_cast<double>(original.size());
}

}  // namespace cosmo::analysis
