#include "analysis/error_distribution.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cosmo::analysis {

ErrorHistogram error_histogram(std::span<const float> original,
                               std::span<const float> reconstructed,
                               std::size_t nbins, double range) {
  require(original.size() == reconstructed.size(), "error_histogram: size mismatch");
  require(!original.empty(), "error_histogram: empty input");
  require(nbins >= 4, "error_histogram: need at least 4 bins");

  const std::size_t n = original.size();
  std::vector<double> errors(n);
  double sum = 0.0, max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    errors[i] = static_cast<double>(reconstructed[i]) - original[i];
    sum += errors[i];
    max_abs = std::max(max_abs, std::fabs(errors[i]));
  }
  const double mean = sum / static_cast<double>(n);

  double m2 = 0.0, m4 = 0.0;
  for (const double e : errors) {
    const double d = e - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  const double stddev = std::sqrt(m2);

  ErrorHistogram h;
  h.mean = mean;
  h.stddev = stddev;
  h.max_abs = max_abs;
  h.excess_kurtosis = m2 > 0.0 ? m4 / (m2 * m2) - 3.0 : 0.0;

  if (range <= 0.0) range = max_abs > 0.0 ? max_abs : 1.0;
  h.bin_edges.resize(nbins + 1);
  for (std::size_t b = 0; b <= nbins; ++b) {
    h.bin_edges[b] = -range + 2.0 * range * static_cast<double>(b) /
                                  static_cast<double>(nbins);
  }
  h.counts.assign(nbins, 0);
  std::size_t within = 0;
  for (const double e : errors) {
    if (stddev > 0.0 && std::fabs(e - mean) <= stddev) ++within;
    if (e < -range || e > range) continue;
    auto b = static_cast<std::size_t>((e + range) / (2.0 * range) *
                                      static_cast<double>(nbins));
    b = std::min(b, nbins - 1);
    ++h.counts[b];
  }
  h.within_one_sigma = stddev > 0.0 ? static_cast<double>(within) / static_cast<double>(n)
                                    : 1.0;
  return h;
}

ErrorShape classify_error_shape(const ErrorHistogram& histogram) {
  // Uniform: excess kurtosis ~ -1.2, ~57.7% within one sigma.
  if (histogram.excess_kurtosis < -0.7 && histogram.within_one_sigma < 0.635) {
    return ErrorShape::kUniformLike;
  }
  // Gaussian-like (bell-shaped, concentrated around zero): excess kurtosis
  // >= -0.5 and at least ~2/3 of the mass within one sigma. Transform codecs
  // often land leptokurtic (kurtosis > 0) — still "Gaussian-like" in the
  // paper's sense of concentrated rather than spread across the bound.
  if (histogram.excess_kurtosis >= -0.5 && histogram.within_one_sigma >= 0.635) {
    return ErrorShape::kGaussianLike;
  }
  return ErrorShape::kOther;
}

}  // namespace cosmo::analysis
