#include "analysis/fof.hpp"

#include "common/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/error.hpp"

namespace cosmo::analysis {

DisjointSet::DisjointSet(std::size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

std::size_t DisjointSet::find(std::size_t i) {
  while (parent_[i] != i) {
    parent_[i] = parent_[parent_[i]];  // path halving
    i = parent_[i];
  }
  return i;
}

bool DisjointSet::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = static_cast<std::uint32_t>(a);
  if (rank_[a] == rank_[b]) ++rank_[a];
  return true;
}

namespace {

/// Linked-cell acceleration structure in flat CSR form: a counting sort
/// buckets particles into cells of edge >= linking length, so friends can
/// only be in the 27 neighboring cells and each cell's particle list is a
/// contiguous slice in ascending particle order.
struct CellGrid {
  std::size_t edge_cells;
  double cell_size;
  double box;
  bool periodic;
  std::vector<std::uint32_t> cell_start;  // size cells + 1
  std::vector<std::uint32_t> particles;   // size n, CSR payload

  CellGrid(double box_, double linking_length, bool periodic_, std::span<const float> x,
           std::span<const float> y, std::span<const float> z, ThreadPool* pool)
      : box(box_), periodic(periodic_) {
    const std::size_t n = x.size();
    edge_cells = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(box_ / linking_length)));
    // Cap the grid so it never allocates more than ~4 cells per particle:
    // a finer grid than that is all empty cells (memory and traversal cost
    // with no pruning benefit). Coarser-than-natural cells stay correct —
    // the neighbor search only requires cell_size >= linking_length — and
    // the chosen edge is reported via FofResult::grid_edge_cells rather
    // than clamped silently.
    const auto cap = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::cbrt(4.0 * static_cast<double>(std::max<std::size_t>(n, 1)))));
    edge_cells = std::min(edge_cells, cap);
    cell_size = box_ / static_cast<double>(edge_cells);
    require(cell_size >= linking_length || edge_cells == 1,
            "fof: cell size fell below the linking length");

    const std::size_t n_cells = edge_cells * edge_cells * edge_cells;
    std::vector<std::uint32_t> cell_of(n);
    parallel_for(pool, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t p = lo; p < hi; ++p) {
        cell_of[p] = static_cast<std::uint32_t>(cell_index_of(x[p], y[p], z[p]));
      }
    }, /*min_grain=*/1u << 14);
    cell_start.assign(n_cells + 1, 0);
    for (const std::uint32_t c : cell_of) ++cell_start[c + 1];
    for (std::size_t c = 0; c < n_cells; ++c) cell_start[c + 1] += cell_start[c];
    particles.resize(n);
    std::vector<std::uint32_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (std::size_t p = 0; p < n; ++p) {
      particles[cursor[cell_of[p]]++] = static_cast<std::uint32_t>(p);
    }
  }

  [[nodiscard]] std::size_t cell_index_of(double x, double y, double z) const {
    auto clampc = [this](double v) {
      auto c = static_cast<long>(v / cell_size);
      if (c < 0) c = 0;
      if (c >= static_cast<long>(edge_cells)) c = static_cast<long>(edge_cells) - 1;
      return static_cast<std::size_t>(c);
    };
    return index(clampc(x), clampc(y), clampc(z));
  }

  [[nodiscard]] std::size_t index(std::size_t cx, std::size_t cy, std::size_t cz) const {
    return (cz * edge_cells + cy) * edge_cells + cx;
  }

  [[nodiscard]] std::span<const std::uint32_t> cell(std::size_t idx) const {
    return {particles.data() + cell_start[idx], cell_start[idx + 1] - cell_start[idx]};
  }
};

double sq(double v) { return v * v; }

}  // namespace

FofResult fof(std::span<const float> x, std::span<const float> y,
              std::span<const float> z, const FofParams& params, ThreadPool* pool) {
  TRACE_SPAN("analysis.fof");
  require(x.size() == y.size() && y.size() == z.size(), "fof: coordinate size mismatch");
  require(params.linking_length > 0.0, "fof: linking length must be positive");
  require(params.box > 0.0, "fof: box must be positive");
  const std::size_t n = x.size();
  const double b2 = sq(params.linking_length);

  const CellGrid grid(params.box, params.linking_length, params.periodic, x, y, z, pool);

  auto dist2 = [&](std::size_t a, std::size_t bq) {
    double dx = x[a] - x[bq];
    double dy = y[a] - y[bq];
    double dz = z[a] - z[bq];
    if (params.periodic) {
      const double half = params.box / 2.0;
      if (dx > half) dx -= params.box;
      if (dx < -half) dx += params.box;
      if (dy > half) dy -= params.box;
      if (dy < -half) dy += params.box;
      if (dz > half) dz -= params.box;
      if (dz < -half) dz += params.box;
    }
    return dx * dx + dy * dy + dz * dz;
  };

  const long ec = static_cast<long>(grid.edge_cells);
  auto wrap_cell = [&](long c) {
    if (params.periodic) {
      c %= ec;
      return static_cast<std::size_t>(c < 0 ? c + ec : c);
    }
    return static_cast<std::size_t>(std::clamp(c, 0l, ec - 1));
  };

  // Friend-pair pass: each z-slab of cells collects its candidate pairs
  // independently (the slab geometry is one cz row of the grid, fixed by
  // the grid alone), then the pairs feed the union-find serially in slab
  // order. Every distance test is pure, so the pair lists — and the
  // resulting components — are identical for any thread count.
  struct Pair {
    std::uint32_t a, b;
  };
  std::vector<std::vector<Pair>> slab_pairs(grid.edge_cells);
  parallel_for(pool, grid.edge_cells, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t cz = lo; cz < hi; ++cz) {
      std::vector<Pair>& pairs = slab_pairs[cz];
      for (std::size_t cy = 0; cy < grid.edge_cells; ++cy) {
        for (std::size_t cx = 0; cx < grid.edge_cells; ++cx) {
          const std::size_t cell_idx = grid.index(cx, cy, cz);
          const auto cell = grid.cell(cell_idx);
          if (cell.empty()) continue;
          // Half-neighborhood enumeration to visit each cell pair once:
          // self plus 13 of the 26 neighbors.
          static const int offsets[14][3] = {
              {0, 0, 0},  {1, 0, 0},  {-1, 1, 0}, {0, 1, 0},  {1, 1, 0},
              {-1, -1, 1}, {0, -1, 1}, {1, -1, 1}, {-1, 0, 1}, {0, 0, 1},
              {1, 0, 1},  {-1, 1, 1}, {0, 1, 1},  {1, 1, 1},
          };
          for (const auto& off : offsets) {
            const std::size_t ox = wrap_cell(static_cast<long>(cx) + off[0]);
            const std::size_t oy = wrap_cell(static_cast<long>(cy) + off[1]);
            const std::size_t oz = wrap_cell(static_cast<long>(cz) + off[2]);
            const std::size_t other_idx = grid.index(ox, oy, oz);
            const bool self = other_idx == cell_idx;
            if (!self && !params.periodic &&
                (off[0] != 0 || off[1] != 0 || off[2] != 0) && other_idx == cell_idx) {
              continue;  // clamped onto self at the non-periodic boundary
            }
            const auto other = grid.cell(other_idx);
            for (std::size_t ai = 0; ai < cell.size(); ++ai) {
              const std::size_t a = cell[ai];
              const std::size_t start = self ? ai + 1 : 0;
              for (std::size_t bi = start; bi < other.size(); ++bi) {
                const std::size_t p = other[bi];
                if (dist2(a, p) <= b2) {
                  pairs.push_back({static_cast<std::uint32_t>(a),
                                   static_cast<std::uint32_t>(p)});
                }
              }
            }
          }
        }
      }
    }
  }, /*min_grain=*/1);

  DisjointSet ds(n);
  std::vector<std::uint32_t> degree;
  if (params.most_connected) degree.assign(n, 0);
  for (const auto& pairs : slab_pairs) {
    for (const auto& pr : pairs) {
      ds.unite(pr.a, pr.b);
      if (params.most_connected) {
        ++degree[pr.a];
        ++degree[pr.b];
      }
    }
  }

  // Collect groups in canonical order: a group's id is the rank of its
  // smallest member index, so halo numbering never depends on union-find
  // internals (root choice) or the schedule.
  std::unordered_map<std::size_t, std::size_t> group_of_root;
  std::vector<std::vector<std::uint32_t>> groups;
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t root = ds.find(p);
    auto [it, inserted] = group_of_root.try_emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(static_cast<std::uint32_t>(p));
  }

  std::vector<std::size_t> halo_groups;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].size() >= params.min_members) halo_groups.push_back(g);
  }

  FofResult result;
  result.grid_edge_cells = grid.edge_cells;
  result.halo_of_particle.assign(n, -1);
  result.halos.resize(halo_groups.size());

  // Per-halo reductions are independent and slot-indexed, so they fan out
  // across the pool; each halo's member traversal order is the CSR
  // (ascending particle) order regardless of threads.
  parallel_for(pool, halo_groups.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t h = lo; h < hi; ++h) {
      const std::vector<std::uint32_t>& members = groups[halo_groups[h]];
      Halo& halo = result.halos[h];
      halo.members = members.size();
      // Center of mass relative to the first member (handles box wrapping).
      const double rx = x[members[0]], ry = y[members[0]], rz = z[members[0]];
      double sx = 0.0, sy = 0.0, sz = 0.0;
      auto rel = [&](double v, double r) {
        double d = v - r;
        if (params.periodic) {
          const double half = params.box / 2.0;
          if (d > half) d -= params.box;
          if (d < -half) d += params.box;
        }
        return d;
      };
      for (const auto p : members) {
        sx += rel(x[p], rx);
        sy += rel(y[p], ry);
        sz += rel(z[p], rz);
      }
      const double inv = 1.0 / static_cast<double>(members.size());
      auto wrap_pos = [&](double v) {
        if (!params.periodic) return v;
        v = std::fmod(v, params.box);
        return v < 0.0 ? v + params.box : v;
      };
      halo.cx = wrap_pos(rx + sx * inv);
      halo.cy = wrap_pos(ry + sy * inv);
      halo.cz = wrap_pos(rz + sz * inv);

      if (params.most_connected && !degree.empty()) {
        std::size_t best = members[0];
        for (const auto p : members) {
          if (degree[p] > degree[best]) best = p;
        }
        halo.most_connected_particle = best;
      }
      if (params.most_bound) {
        // Potential of particle i ~ -sum_j 1/r_ij over (a sample of) members.
        std::vector<std::uint32_t> sample(members);
        if (sample.size() > params.potential_sample_cap) {
          const std::size_t stride = sample.size() / params.potential_sample_cap;
          std::vector<std::uint32_t> reduced;
          for (std::size_t i = 0; i < sample.size(); i += stride) reduced.push_back(sample[i]);
          sample.swap(reduced);
        }
        double best_pot = 1e300;
        std::size_t best = members[0];
        for (const auto p : members) {
          double pot = 0.0;
          for (const auto q : sample) {
            if (q == p) continue;
            const double d = std::sqrt(dist2(p, q)) + 1e-6;
            pot -= 1.0 / d;
          }
          if (pot < best_pot) {
            best_pot = pot;
            best = p;
          }
        }
        halo.most_bound_particle = best;
      }
    }
  }, /*min_grain=*/1);

  for (std::size_t h = 0; h < halo_groups.size(); ++h) {
    for (const auto p : groups[halo_groups[h]]) {
      result.halo_of_particle[p] = static_cast<std::int32_t>(h);
    }
  }
  return result;
}

}  // namespace cosmo::analysis
