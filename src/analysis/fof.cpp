#include "analysis/fof.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/error.hpp"

namespace cosmo::analysis {

DisjointSet::DisjointSet(std::size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

std::size_t DisjointSet::find(std::size_t i) {
  while (parent_[i] != i) {
    parent_[i] = parent_[parent_[i]];  // path halving
    i = parent_[i];
  }
  return i;
}

bool DisjointSet::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = static_cast<std::uint32_t>(a);
  if (rank_[a] == rank_[b]) ++rank_[a];
  return true;
}

namespace {

/// Linked-cell acceleration structure: particles bucketed into cells of
/// edge >= linking length; friends can only be in the 27 neighboring cells.
struct CellGrid {
  std::size_t edge_cells;
  double cell_size;
  double box;
  bool periodic;
  std::vector<std::vector<std::uint32_t>> cells;

  CellGrid(double box_, double linking_length, bool periodic_)
      : box(box_), periodic(periodic_) {
    edge_cells = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(box_ / linking_length)));
    edge_cells = std::min<std::size_t>(edge_cells, 512);
    cell_size = box_ / static_cast<double>(edge_cells);
    cells.resize(edge_cells * edge_cells * edge_cells);
  }

  [[nodiscard]] std::size_t cell_of(double x, double y, double z) const {
    auto clampc = [this](double v) {
      auto c = static_cast<long>(v / cell_size);
      if (c < 0) c = 0;
      if (c >= static_cast<long>(edge_cells)) c = static_cast<long>(edge_cells) - 1;
      return static_cast<std::size_t>(c);
    };
    return index(clampc(x), clampc(y), clampc(z));
  }

  [[nodiscard]] std::size_t index(std::size_t cx, std::size_t cy, std::size_t cz) const {
    return (cz * edge_cells + cy) * edge_cells + cx;
  }
};

double sq(double v) { return v * v; }

}  // namespace

FofResult fof(std::span<const float> x, std::span<const float> y,
              std::span<const float> z, const FofParams& params) {
  require(x.size() == y.size() && y.size() == z.size(), "fof: coordinate size mismatch");
  require(params.linking_length > 0.0, "fof: linking length must be positive");
  require(params.box > 0.0, "fof: box must be positive");
  const std::size_t n = x.size();
  const double b2 = sq(params.linking_length);

  CellGrid grid(params.box, params.linking_length, params.periodic);
  for (std::size_t p = 0; p < n; ++p) {
    grid.cells[grid.cell_of(x[p], y[p], z[p])].push_back(static_cast<std::uint32_t>(p));
  }

  auto dist2 = [&](std::size_t a, std::size_t bq) {
    double dx = x[a] - x[bq];
    double dy = y[a] - y[bq];
    double dz = z[a] - z[bq];
    if (params.periodic) {
      const double half = params.box / 2.0;
      if (dx > half) dx -= params.box;
      if (dx < -half) dx += params.box;
      if (dy > half) dy -= params.box;
      if (dy < -half) dy += params.box;
      if (dz > half) dz -= params.box;
      if (dz < -half) dz += params.box;
    }
    return dx * dx + dy * dy + dz * dz;
  };

  DisjointSet ds(n);
  std::vector<std::uint32_t> degree;
  if (params.most_connected) degree.assign(n, 0);

  const long ec = static_cast<long>(grid.edge_cells);
  auto wrap_cell = [&](long c) {
    if (params.periodic) {
      c %= ec;
      return static_cast<std::size_t>(c < 0 ? c + ec : c);
    }
    return static_cast<std::size_t>(std::clamp(c, 0l, ec - 1));
  };

  for (std::size_t cz = 0; cz < grid.edge_cells; ++cz) {
    for (std::size_t cy = 0; cy < grid.edge_cells; ++cy) {
      for (std::size_t cx = 0; cx < grid.edge_cells; ++cx) {
        const auto& cell = grid.cells[grid.index(cx, cy, cz)];
        if (cell.empty()) continue;
        // Half-neighborhood enumeration to visit each cell pair once:
        // self plus 13 of the 26 neighbors.
        static const int offsets[14][3] = {
            {0, 0, 0},  {1, 0, 0},  {-1, 1, 0}, {0, 1, 0},  {1, 1, 0},
            {-1, -1, 1}, {0, -1, 1}, {1, -1, 1}, {-1, 0, 1}, {0, 0, 1},
            {1, 0, 1},  {-1, 1, 1}, {0, 1, 1},  {1, 1, 1},
        };
        for (const auto& off : offsets) {
          const std::size_t ox = wrap_cell(static_cast<long>(cx) + off[0]);
          const std::size_t oy = wrap_cell(static_cast<long>(cy) + off[1]);
          const std::size_t oz = wrap_cell(static_cast<long>(cz) + off[2]);
          const std::size_t other_idx = grid.index(ox, oy, oz);
          const bool self = other_idx == grid.index(cx, cy, cz);
          if (!self && !params.periodic &&
              (off[0] != 0 || off[1] != 0 || off[2] != 0) &&
              other_idx == grid.index(cx, cy, cz)) {
            continue;  // clamped onto self at the non-periodic boundary
          }
          const auto& other = grid.cells[other_idx];
          for (std::size_t ai = 0; ai < cell.size(); ++ai) {
            const std::size_t a = cell[ai];
            const std::size_t start = self ? ai + 1 : 0;
            for (std::size_t bi = start; bi < other.size(); ++bi) {
              const std::size_t p = other[bi];
              if (!params.most_connected && ds.find(a) == ds.find(p)) {
                continue;  // already linked; the distance test can only re-confirm
              }
              if (dist2(a, p) <= b2) {
                ds.unite(a, p);
                if (params.most_connected) {
                  ++degree[a];
                  ++degree[p];
                }
              }
            }
          }
        }
      }
    }
  }

  // Collect groups.
  std::map<std::size_t, std::vector<std::uint32_t>> groups;
  for (std::size_t p = 0; p < n; ++p) {
    groups[ds.find(p)].push_back(static_cast<std::uint32_t>(p));
  }

  FofResult result;
  result.halo_of_particle.assign(n, -1);
  for (auto& [root, members] : groups) {
    if (members.size() < params.min_members) continue;
    Halo halo;
    halo.members = members.size();
    // Center of mass relative to the first member (handles box wrapping).
    const double rx = x[members[0]], ry = y[members[0]], rz = z[members[0]];
    double sx = 0.0, sy = 0.0, sz = 0.0;
    auto rel = [&](double v, double r) {
      double d = v - r;
      if (params.periodic) {
        const double half = params.box / 2.0;
        if (d > half) d -= params.box;
        if (d < -half) d += params.box;
      }
      return d;
    };
    for (const auto p : members) {
      sx += rel(x[p], rx);
      sy += rel(y[p], ry);
      sz += rel(z[p], rz);
    }
    const double inv = 1.0 / static_cast<double>(members.size());
    auto wrap_pos = [&](double v) {
      if (!params.periodic) return v;
      v = std::fmod(v, params.box);
      return v < 0.0 ? v + params.box : v;
    };
    halo.cx = wrap_pos(rx + sx * inv);
    halo.cy = wrap_pos(ry + sy * inv);
    halo.cz = wrap_pos(rz + sz * inv);

    if (params.most_connected && !degree.empty()) {
      std::size_t best = members[0];
      for (const auto p : members) {
        if (degree[p] > degree[best]) best = p;
      }
      halo.most_connected_particle = best;
    }
    if (params.most_bound) {
      // Potential of particle i ~ -sum_j 1/r_ij over (a sample of) members.
      std::vector<std::uint32_t> sample(members);
      if (sample.size() > params.potential_sample_cap) {
        const std::size_t stride = sample.size() / params.potential_sample_cap;
        std::vector<std::uint32_t> reduced;
        for (std::size_t i = 0; i < sample.size(); i += stride) reduced.push_back(sample[i]);
        sample.swap(reduced);
      }
      double best_pot = 1e300;
      std::size_t best = members[0];
      for (const auto p : members) {
        double pot = 0.0;
        for (const auto q : sample) {
          if (q == p) continue;
          const double d = std::sqrt(dist2(p, q)) + 1e-6;
          pot -= 1.0 / d;
        }
        if (pot < best_pot) {
          best_pot = pot;
          best = p;
        }
      }
      halo.most_bound_particle = best;
    }

    const auto halo_idx = static_cast<std::int32_t>(result.halos.size());
    for (const auto p : members) result.halo_of_particle[p] = halo_idx;
    result.halos.push_back(halo);
  }
  return result;
}

}  // namespace cosmo::analysis
