/// \file halo_profiles.hpp
/// \brief Stacked radial density profiles of FoF halos.
///
/// The paper's halo discussion leans on reference [16] ("The power spectrum
/// dependence of dark matter halo concentrations"): halo internal structure
/// is itself an analysis product that compression can distort. This module
/// measures the stacked radial profile rho(r) of a halo catalog and a
/// concentration proxy, so profile distortion can be compared between
/// original and reconstructed particle data — a finer-grained check than
/// halo counts alone.
#pragma once

#include <span>
#include <vector>

#include "analysis/fof.hpp"

namespace cosmo::analysis {

/// One radial bin of the stacked profile.
struct ProfileBin {
  double r_lo = 0.0, r_hi = 0.0;  ///< radius range (same units as positions)
  double density = 0.0;           ///< particles per unit volume, stack-averaged
  std::size_t particles = 0;
};

struct ProfileParams {
  std::size_t nbins = 16;
  double r_max = 3.0;             ///< profile extent from halo center
  std::size_t min_members = 50;   ///< halos below this are not stacked
  double box = 256.0;             ///< periodic box edge
};

/// Stacks all qualifying halos (centered on their centers of mass) and
/// returns the averaged radial density profile.
std::vector<ProfileBin> stacked_profile(std::span<const float> x,
                                        std::span<const float> y,
                                        std::span<const float> z,
                                        const FofResult& halos,
                                        const ProfileParams& params = {});

/// Concentration proxy: r_half / r_max-enclosing radius ratio —
/// the radius containing half the stacked mass over the radius containing
/// 90% of it. Lower values = more centrally concentrated.
double concentration_proxy(const std::vector<ProfileBin>& profile);

/// Maximum relative density deviation between two profiles over bins where
/// the reference holds at least \p min_particles (compression QA metric).
double profile_deviation(const std::vector<ProfileBin>& reference,
                         const std::vector<ProfileBin>& other,
                         std::size_t min_particles = 50);

}  // namespace cosmo::analysis
