#include "analysis/halo_profiles.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cosmo::analysis {

std::vector<ProfileBin> stacked_profile(std::span<const float> x,
                                        std::span<const float> y,
                                        std::span<const float> z,
                                        const FofResult& halos,
                                        const ProfileParams& params) {
  require(x.size() == y.size() && y.size() == z.size(),
          "stacked_profile: coordinate size mismatch");
  require(params.nbins >= 2, "stacked_profile: need at least 2 bins");
  require(params.r_max > 0.0, "stacked_profile: r_max must be positive");

  std::vector<ProfileBin> bins(params.nbins);
  const double dr = params.r_max / static_cast<double>(params.nbins);
  for (std::size_t b = 0; b < params.nbins; ++b) {
    bins[b].r_lo = static_cast<double>(b) * dr;
    bins[b].r_hi = static_cast<double>(b + 1) * dr;
  }

  std::size_t stacked_halos = 0;
  for (const auto& halo : halos.halos) {
    if (halo.members < params.min_members) continue;
    ++stacked_halos;
  }
  if (stacked_halos == 0) return bins;

  auto wrap_delta = [&params](double d) {
    const double half = params.box / 2.0;
    if (d > half) d -= params.box;
    if (d < -half) d += params.box;
    return d;
  };

  for (std::size_t p = 0; p < x.size(); ++p) {
    const auto h = halos.halo_of_particle[p];
    if (h < 0) continue;
    const auto& halo = halos.halos[static_cast<std::size_t>(h)];
    if (halo.members < params.min_members) continue;
    const double dx = wrap_delta(x[p] - halo.cx);
    const double dy = wrap_delta(y[p] - halo.cy);
    const double dz = wrap_delta(z[p] - halo.cz);
    const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (r >= params.r_max) continue;
    ++bins[static_cast<std::size_t>(r / dr)].particles;
  }

  // Density: particles per shell volume, averaged over stacked halos.
  for (auto& bin : bins) {
    const double shell = 4.0 / 3.0 * 3.14159265358979323846 *
                         (std::pow(bin.r_hi, 3.0) - std::pow(bin.r_lo, 3.0));
    bin.density = static_cast<double>(bin.particles) /
                  (shell * static_cast<double>(stacked_halos));
  }
  return bins;
}

double concentration_proxy(const std::vector<ProfileBin>& profile) {
  require(!profile.empty(), "concentration_proxy: empty profile");
  std::size_t total = 0;
  for (const auto& bin : profile) total += bin.particles;
  if (total == 0) return 1.0;

  auto radius_enclosing = [&](double fraction) {
    const auto target = static_cast<std::size_t>(fraction * static_cast<double>(total));
    std::size_t cumulative = 0;
    for (const auto& bin : profile) {
      cumulative += bin.particles;
      if (cumulative >= target) return bin.r_hi;
    }
    return profile.back().r_hi;
  };
  const double r_half = radius_enclosing(0.5);
  const double r_90 = radius_enclosing(0.9);
  return r_90 > 0.0 ? r_half / r_90 : 1.0;
}

double profile_deviation(const std::vector<ProfileBin>& reference,
                         const std::vector<ProfileBin>& other,
                         std::size_t min_particles) {
  require(reference.size() == other.size(), "profile_deviation: binning mismatch");
  double worst = 0.0;
  for (std::size_t b = 0; b < reference.size(); ++b) {
    if (reference[b].particles < min_particles) continue;
    if (reference[b].density <= 0.0) continue;
    worst = std::max(worst, std::fabs(other[b].density / reference[b].density - 1.0));
  }
  return worst;
}

}  // namespace cosmo::analysis
