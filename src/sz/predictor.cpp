#include "sz/predictor.hpp"

#include <cmath>

namespace cosmo::sz {

namespace {

/// Value at (x,y,z) if inside the block, else 0 (blocks are independent).
inline float at_or_zero(std::span<const float> buf, const Dims& dims, const BlockRange& blk,
                        std::size_t x, std::size_t y, std::size_t z, bool x_ok, bool y_ok,
                        bool z_ok) {
  if (!x_ok || !y_ok || !z_ok) return 0.0f;
  (void)blk;
  return buf[dims.index(x, y, z)];
}

}  // namespace

float lorenzo_predict(std::span<const float> recon, const Dims& dims, const BlockRange& blk,
                      std::size_t x, std::size_t y, std::size_t z) {
  const bool xm = x > blk.x0;
  const bool ym = y > blk.y0;
  const bool zm = z > blk.z0;
  const int rank = dims.rank();
  if (rank == 1) {
    return xm ? recon[dims.index(x - 1, y, z)] : 0.0f;
  }
  if (rank == 2) {
    const float fx = at_or_zero(recon, dims, blk, x - 1, y, z, xm, true, true);
    const float fy = at_or_zero(recon, dims, blk, x, y - 1, z, true, ym, true);
    const float fxy = at_or_zero(recon, dims, blk, x - 1, y - 1, z, xm, ym, true);
    return fx + fy - fxy;
  }
  const float f100 = at_or_zero(recon, dims, blk, x - 1, y, z, xm, true, true);
  const float f010 = at_or_zero(recon, dims, blk, x, y - 1, z, true, ym, true);
  const float f001 = at_or_zero(recon, dims, blk, x, y, z - 1, true, true, zm);
  const float f110 = at_or_zero(recon, dims, blk, x - 1, y - 1, z, xm, ym, true);
  const float f101 = at_or_zero(recon, dims, blk, x - 1, y, z - 1, xm, true, zm);
  const float f011 = at_or_zero(recon, dims, blk, x, y - 1, z - 1, true, ym, zm);
  const float f111 = at_or_zero(recon, dims, blk, x - 1, y - 1, z - 1, xm, ym, zm);
  return f100 + f010 + f001 - f110 - f101 - f011 + f111;
}

RegressionCoef fit_regression(std::span<const float> data, const Dims& dims,
                              const BlockRange& blk) {
  const double nx = static_cast<double>(blk.x1 - blk.x0);
  const double ny = static_cast<double>(blk.y1 - blk.y0);
  const double nz = static_cast<double>(blk.z1 - blk.z0);
  const double n = nx * ny * nz;
  const double cx = (nx - 1.0) / 2.0;
  const double cy = (ny - 1.0) / 2.0;
  const double cz = (nz - 1.0) / 2.0;

  double sum = 0.0, sx = 0.0, sy = 0.0, sz_ = 0.0;
  for (std::size_t z = blk.z0; z < blk.z1; ++z) {
    for (std::size_t y = blk.y0; y < blk.y1; ++y) {
      for (std::size_t x = blk.x0; x < blk.x1; ++x) {
        const double f = data[dims.index(x, y, z)];
        const double dx = static_cast<double>(x - blk.x0) - cx;
        const double dy = static_cast<double>(y - blk.y0) - cy;
        const double dz = static_cast<double>(z - blk.z0) - cz;
        sum += f;
        sx += f * dx;
        sy += f * dy;
        sz_ += f * dz;
      }
    }
  }
  // Sum of squared centered coordinates along one axis, replicated over the
  // other two axes: Var1d(m) * (product of other extents) with
  // Var1d(m) = m(m^2-1)/12.
  auto sq = [](double m) { return m * (m * m - 1.0) / 12.0; };
  const double vx = sq(nx) * ny * nz;
  const double vy = sq(ny) * nx * nz;
  const double vz = sq(nz) * nx * ny;

  RegressionCoef c;
  c.a = vx > 0.0 ? static_cast<float>(sx / vx) : 0.0f;
  c.b = vy > 0.0 ? static_cast<float>(sy / vy) : 0.0f;
  c.c = vz > 0.0 ? static_cast<float>(sz_ / vz) : 0.0f;
  // d is the model value at the block origin (dx=dy=dz=0):
  // mean - a*cx - b*cy - c*cz.
  c.d = static_cast<float>(sum / n - c.a * cx - c.b * cy - c.c * cz);
  return c;
}

double lorenzo_error_estimate(std::span<const float> data, const Dims& dims,
                              const BlockRange& blk) {
  double err = 0.0;
  for (std::size_t z = blk.z0; z < blk.z1; ++z) {
    for (std::size_t y = blk.y0; y < blk.y1; ++y) {
      for (std::size_t x = blk.x0; x < blk.x1; ++x) {
        const float pred = lorenzo_predict(data, dims, blk, x, y, z);
        err += std::fabs(static_cast<double>(data[dims.index(x, y, z)]) - pred);
      }
    }
  }
  return err;
}

double regression_error_estimate(std::span<const float> data, const Dims& dims,
                                 const BlockRange& blk, const RegressionCoef& coef) {
  double err = 0.0;
  for (std::size_t z = blk.z0; z < blk.z1; ++z) {
    for (std::size_t y = blk.y0; y < blk.y1; ++y) {
      for (std::size_t x = blk.x0; x < blk.x1; ++x) {
        const float pred = coef.predict(x - blk.x0, y - blk.y0, z - blk.z0);
        err += std::fabs(static_cast<double>(data[dims.index(x, y, z)]) - pred);
      }
    }
  }
  return err;
}

}  // namespace cosmo::sz
