#include "sz/predictor.hpp"

#include <cmath>

namespace cosmo::sz {

namespace {

/// Value at (x,y,z) if inside the block, else 0 (blocks are independent).
inline float at_or_zero(std::span<const float> buf, const Dims& dims, const BlockRange& blk,
                        std::size_t x, std::size_t y, std::size_t z, bool x_ok, bool y_ok,
                        bool z_ok) {
  if (!x_ok || !y_ok || !z_ok) return 0.0f;
  (void)blk;
  return buf[dims.index(x, y, z)];
}

}  // namespace

float lorenzo_predict(std::span<const float> recon, const Dims& dims, const BlockRange& blk,
                      std::size_t x, std::size_t y, std::size_t z) {
  const bool xm = x > blk.x0;
  const bool ym = y > blk.y0;
  const bool zm = z > blk.z0;
  const int rank = dims.rank();
  if (rank == 1) {
    return xm ? recon[dims.index(x - 1, y, z)] : 0.0f;
  }
  if (rank == 2) {
    const float fx = at_or_zero(recon, dims, blk, x - 1, y, z, xm, true, true);
    const float fy = at_or_zero(recon, dims, blk, x, y - 1, z, true, ym, true);
    const float fxy = at_or_zero(recon, dims, blk, x - 1, y - 1, z, xm, ym, true);
    return fx + fy - fxy;
  }
  const float f100 = at_or_zero(recon, dims, blk, x - 1, y, z, xm, true, true);
  const float f010 = at_or_zero(recon, dims, blk, x, y - 1, z, true, ym, true);
  const float f001 = at_or_zero(recon, dims, blk, x, y, z - 1, true, true, zm);
  const float f110 = at_or_zero(recon, dims, blk, x - 1, y - 1, z, xm, ym, true);
  const float f101 = at_or_zero(recon, dims, blk, x - 1, y, z - 1, xm, true, zm);
  const float f011 = at_or_zero(recon, dims, blk, x, y - 1, z - 1, true, ym, zm);
  const float f111 = at_or_zero(recon, dims, blk, x - 1, y - 1, z - 1, xm, ym, zm);
  return f100 + f010 + f001 - f110 - f101 - f011 + f111;
}

RegressionCoef fit_regression(std::span<const float> data, const Dims& dims,
                              const BlockRange& blk) {
  const double nx = static_cast<double>(blk.x1 - blk.x0);
  const double ny = static_cast<double>(blk.y1 - blk.y0);
  const double nz = static_cast<double>(blk.z1 - blk.z0);
  const double n = nx * ny * nz;
  const double cx = (nx - 1.0) / 2.0;
  const double cy = (ny - 1.0) / 2.0;
  const double cz = (nz - 1.0) / 2.0;

  // Row-based interior loop: the per-point dims.index() is hoisted to one
  // row base per (y, z) and the x loop is branch-free straight-line FP.
  // Accumulation order (x fastest, then y, then z) is unchanged, so the
  // sums — and the coefficients stored in the stream — are bit-identical.
  const std::size_t row_n = blk.x1 - blk.x0;
  double sum = 0.0, sx = 0.0, sy = 0.0, sz_ = 0.0;
  for (std::size_t z = blk.z0; z < blk.z1; ++z) {
    const double dz = static_cast<double>(z - blk.z0) - cz;
    for (std::size_t y = blk.y0; y < blk.y1; ++y) {
      const double dy = static_cast<double>(y - blk.y0) - cy;
      const float* row = data.data() + dims.index(blk.x0, y, z);
      for (std::size_t k = 0; k < row_n; ++k) {
        const double f = row[k];
        const double dx = static_cast<double>(k) - cx;
        sum += f;
        sx += f * dx;
        sy += f * dy;
        sz_ += f * dz;
      }
    }
  }
  // Sum of squared centered coordinates along one axis, replicated over the
  // other two axes: Var1d(m) * (product of other extents) with
  // Var1d(m) = m(m^2-1)/12.
  auto sq = [](double m) { return m * (m * m - 1.0) / 12.0; };
  const double vx = sq(nx) * ny * nz;
  const double vy = sq(ny) * nx * nz;
  const double vz = sq(nz) * nx * ny;

  RegressionCoef c;
  c.a = vx > 0.0 ? static_cast<float>(sx / vx) : 0.0f;
  c.b = vy > 0.0 ? static_cast<float>(sy / vy) : 0.0f;
  c.c = vz > 0.0 ? static_cast<float>(sz_ / vz) : 0.0f;
  // d is the model value at the block origin (dx=dy=dz=0):
  // mean - a*cx - b*cy - c*cz.
  c.d = static_cast<float>(sum / n - c.a * cx - c.b * cy - c.c * cz);
  return c;
}

double lorenzo_error_estimate(std::span<const float> data, const Dims& dims,
                              const BlockRange& blk) {
  // The estimate predicts from *original* neighbors, so unlike the encode
  // loop there is no loop-carried dependence: interior rows run the
  // branch-free stencil (lorenzo_predict3_interior) and only boundary rows
  // and boundary columns pay the general masked path. Same per-point
  // expressions in the same order — the sum is bit-identical.
  double err = 0.0;
  const int rank = dims.rank();
  const std::size_t nx = dims.nx;
  const std::size_t nxy = dims.nx * dims.ny;
  const std::size_t row_n = blk.x1 - blk.x0;
  const float* d = data.data();
  for (std::size_t z = blk.z0; z < blk.z1; ++z) {
    const bool zm = z > blk.z0;
    for (std::size_t y = blk.y0; y < blk.y1; ++y) {
      const bool ym = y > blk.y0;
      const std::size_t row = dims.index(blk.x0, y, z);
      std::size_t k = 0;
      if ((rank == 3 && ym && zm) || (rank == 2 && ym)) {
        // Boundary column x0, then the branch-free interior.
        err += std::fabs(static_cast<double>(d[row]) -
                         lorenzo_predict(data, dims, blk, blk.x0, y, z));
        if (rank == 3) {
          for (k = 1; k < row_n; ++k) {
            const float pred = lorenzo_predict3_interior(d, row + k, nx, nxy);
            err += std::fabs(static_cast<double>(d[row + k]) - pred);
          }
        } else {
          for (k = 1; k < row_n; ++k) {
            const float pred = lorenzo_predict2_interior(d, row + k, nx);
            err += std::fabs(static_cast<double>(d[row + k]) - pred);
          }
        }
      } else {
        for (k = 0; k < row_n; ++k) {
          const float pred = lorenzo_predict(data, dims, blk, blk.x0 + k, y, z);
          err += std::fabs(static_cast<double>(d[row + k]) - pred);
        }
      }
    }
  }
  return err;
}

double regression_error_estimate(std::span<const float> data, const Dims& dims,
                                 const BlockRange& blk, const RegressionCoef& coef) {
  double err = 0.0;
  const std::size_t row_n = blk.x1 - blk.x0;
  for (std::size_t z = blk.z0; z < blk.z1; ++z) {
    for (std::size_t y = blk.y0; y < blk.y1; ++y) {
      const float* row = data.data() + dims.index(blk.x0, y, z);
      const std::size_t dy = y - blk.y0;
      const std::size_t dz = z - blk.z0;
      for (std::size_t k = 0; k < row_n; ++k) {
        const float pred = coef.predict(k, dy, dz);
        err += std::fabs(static_cast<double>(row[k]) - pred);
      }
    }
  }
  return err;
}

}  // namespace cosmo::sz
