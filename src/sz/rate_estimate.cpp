#include "sz/rate_estimate.hpp"

#include <algorithm>

#include "codec/huffman.hpp"
#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"

namespace cosmo::sz {

RateEstimate estimate_rate(std::span<const float> data, const Dims& dims,
                           const Params& params, std::size_t block_stride) {
  require(data.size() == dims.count(), "estimate_rate: data/dims size mismatch");
  require(!data.empty(), "estimate_rate: empty input");
  require(block_stride >= 1, "estimate_rate: block_stride must be >= 1");
  const std::size_t edge =
      params.block_edge ? params.block_edge : default_block_edge(dims.rank());

  const Quantizer quant(params.abs_error_bound, params.radius);
  // Codes are 0 (unpredictable) or (error + radius) in (0, 2*radius): a flat
  // histogram indexed by code replaces the old std::map (the map's node
  // allocations and log-n lookups dominated the estimator's runtime).
  const std::size_t code_space = 2 * static_cast<std::size_t>(params.radius);
  require(code_space <= (1u << 26), "estimate_rate: radius too large");
  std::vector<float> recon(data.size(), 0.0f);
  std::vector<std::uint64_t> code_freq(code_space, 0);
  std::size_t unpredictable = 0;
  std::size_t sampled_values = 0;
  std::size_t block_index = 0;
  std::size_t sampled_blocks = 0;
  std::size_t total_blocks = 0;
  std::size_t regression_blocks = 0;

  for (std::size_t z0 = 0; z0 < dims.nz; z0 += edge) {
    for (std::size_t y0 = 0; y0 < dims.ny; y0 += edge) {
      for (std::size_t x0 = 0; x0 < dims.nx; x0 += edge) {
        ++total_blocks;
        // Deterministic sampling: every block_stride-th block in the same
        // z-major traversal compress() uses, starting at block 0. SZ
        // prediction never crosses block borders, so each sampled block
        // quantizes exactly as it would in a full run.
        if (block_index++ % block_stride != 0) continue;
        ++sampled_blocks;
        BlockRange blk;
        blk.x0 = x0;
        blk.x1 = std::min(x0 + edge, dims.nx);
        blk.y0 = y0;
        blk.y1 = std::min(y0 + edge, dims.ny);
        blk.z0 = z0;
        blk.z1 = std::min(z0 + edge, dims.nz);

        bool use_reg = false;
        RegressionCoef coef;
        if (params.regression && blk.count() >= 8) {
          coef = fit_regression(data, dims, blk);
          use_reg = regression_error_estimate(data, dims, blk, coef) <
                    lorenzo_error_estimate(data, dims, blk);
        }
        if (use_reg) ++regression_blocks;
        sampled_values += blk.count();

        for (std::size_t z = blk.z0; z < blk.z1; ++z) {
          for (std::size_t y = blk.y0; y < blk.y1; ++y) {
            for (std::size_t x = blk.x0; x < blk.x1; ++x) {
              const std::size_t idx = dims.index(x, y, z);
              const float pred = use_reg
                                     ? coef.predict(x - blk.x0, y - blk.y0, z - blk.z0)
                                     : lorenzo_predict(recon, dims, blk, x, y, z);
              const Quantizer::Result q = quant.quantize(data[idx], pred);
              ++code_freq[q.code];
              if (q.code == 0) {
                ++unpredictable;
                recon[idx] = data[idx];
              } else {
                recon[idx] = q.reconstructed;
              }
            }
          }
        }
      }
    }
  }

  std::vector<std::uint64_t> freqs;
  for (const std::uint64_t f : code_freq) {
    if (f > 0) freqs.push_back(f);
  }

  RateEstimate est;
  // All per-value statistics come from the sampled blocks; with stride 1
  // that is the whole field, with stride N it is an unbiased extrapolation
  // (block metadata scales with blocks-per-value, which the sample carries).
  const double n = static_cast<double>(sampled_values);
  est.entropy_bits_per_value = shannon_entropy_bits(freqs);
  est.unpredictable_fraction = static_cast<double>(unpredictable) / n;
  est.sampled_blocks = sampled_blocks;
  est.total_blocks = total_blocks;
  // Unpredictable values carry a full float on top of their (rare) code;
  // per-block metadata: 1 flag byte + 16 coef bytes for regression blocks.
  const double metadata_bits = (static_cast<double>(sampled_blocks) * 8.0 +
                                static_cast<double>(regression_blocks) * 128.0) /
                               n;
  est.estimated_bits_per_value =
      est.entropy_bits_per_value + 32.0 * est.unpredictable_fraction + metadata_bits;
  return est;
}

}  // namespace cosmo::sz
