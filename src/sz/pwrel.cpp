#include "sz/pwrel.hpp"

#include <atomic>
#include <cmath>
#include <cstring>

#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "common/telemetry.hpp"

namespace cosmo::sz {

namespace {

constexpr std::uint32_t kMagic = 0x535A5052;  // "SZPR"
constexpr double kDefaultZeroRatio = 1e-10;

enum Class : std::uint32_t { kZero = 0, kPos = 1, kNeg = 2 };

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32(std::span<const std::uint8_t> b, std::size_t& pos) {
  require_format(pos + 4 <= b.size(), "pwrel: truncated stream");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[pos++]) << (8 * i);
  return v;
}

std::uint64_t read_u64(std::span<const std::uint8_t> b, std::size_t& pos) {
  require_format(pos + 8 <= b.size(), "pwrel: truncated stream");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[pos++]) << (8 * i);
  return v;
}

}  // namespace

bool is_pwrel_stream(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= 4 && bytes[0] == 0x52 && bytes[1] == 0x50 && bytes[2] == 0x5A &&
         bytes[3] == 0x53;
}

std::vector<std::uint8_t> compress_pwrel(std::span<const float> data, const Dims& dims,
                                         const PwRelParams& params, Stats* stats,
                                         ThreadPool* pool) {
  std::vector<std::uint8_t> out;
  compress_pwrel_into(data, dims, params, out, stats, pool);
  return out;
}

void compress_pwrel_into(std::span<const float> data, const Dims& dims,
                         const PwRelParams& params, std::vector<std::uint8_t>& out,
                         Stats* stats, ThreadPool* pool) {
  TRACE_SPAN("sz.pwrel.compress");
  require(data.size() == dims.count(), "compress_pwrel: data/dims size mismatch");
  require(!data.empty(), "compress_pwrel: empty input");
  require(params.pw_rel_bound > 0.0 && params.pw_rel_bound < 1.0,
          "compress_pwrel: pw_rel bound must be in (0, 1)");

  // Parallel max reduction: fabs/max are exact, so the result is identical
  // for any chunking.
  constexpr std::size_t kChunk = 1u << 20;
  const std::size_t n_chunks = (data.size() + kChunk - 1) / kChunk;
  std::vector<double> chunk_max(n_chunks, 0.0);
  parallel_for(pool, n_chunks, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      double m = 0.0;
      const std::size_t end = std::min((c + 1) * kChunk, data.size());
      for (std::size_t i = c * kChunk; i < end; ++i) {
        m = std::max(m, std::fabs(static_cast<double>(data[i])));
      }
      chunk_max[c] = m;
    }
  }, /*min_grain=*/1);
  double max_abs = 0.0;
  for (const double m : chunk_max) max_abs = std::max(max_abs, m);
  const double ratio =
      params.zero_threshold_ratio > 0.0 ? params.zero_threshold_ratio : kDefaultZeroRatio;
  const double thresh = max_abs > 0.0 ? max_abs * ratio : 0.0;
  const double log_floor = thresh > 0.0 ? std::log(thresh) : 0.0;

  // Class per point + log magnitudes (zeros carry the floor so the log
  // field stays smooth for the predictor). Element-wise with slot-indexed
  // writes, so any partition gives the same result.
  std::vector<std::uint32_t> classes(data.size());
  std::vector<float> logs(data.size());
  parallel_for(pool, data.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double v = data[i];
      if (std::fabs(v) <= thresh) {
        classes[i] = kZero;
        logs[i] = static_cast<float>(log_floor);
      } else {
        classes[i] = v > 0.0 ? kPos : kNeg;
        logs[i] = static_cast<float>(std::log(std::fabs(v)));
      }
    }
  }, /*min_grain=*/kChunk / 16);

  // A symmetric bound eb on ln|x| gives |x'/x| in [e^-eb, e^eb]; choosing
  // eb = ln(1 + p) makes the upper ratio exactly 1 + p and the lower
  // 1/(1+p) > 1 - p, so the point-wise relative bound holds on both sides.
  Params abs_params;
  abs_params.abs_error_bound = std::log(1.0 + params.pw_rel_bound);
  abs_params.block_edge = params.block_edge;
  abs_params.regression = params.regression;
  abs_params.lossless = params.lossless;

  Stats inner_stats;
  const std::vector<std::uint8_t> log_stream =
      compress(logs, dims, abs_params, &inner_stats, pool);
  const std::vector<std::uint8_t> class_stream = huffman_encode_chunked(classes, pool);
  std::vector<std::uint8_t> class_packed = lzss_encode_chunked(class_stream, pool);
  const bool class_lz = class_packed.size() < class_stream.size();

  out.clear();
  append_u32(out, kMagic);
  append_u64(out, data.size());
  out.push_back(class_lz ? 1 : 0);
  {
    std::uint64_t bits;
    static_assert(sizeof(double) == 8);
    std::memcpy(&bits, &thresh, 8);
    append_u64(out, bits);
  }
  append_u64(out, log_stream.size());
  const auto& cls_bytes = class_lz ? class_packed : class_stream;
  append_u64(out, cls_bytes.size());
  out.insert(out.end(), log_stream.begin(), log_stream.end());
  out.insert(out.end(), cls_bytes.begin(), cls_bytes.end());

  if (stats) {
    *stats = inner_stats;
    stats->compressed_bytes = out.size();
    stats->bit_rate = static_cast<double>(out.size()) * 8.0 / static_cast<double>(data.size());
  }
}

std::vector<float> decompress_pwrel(std::span<const std::uint8_t> bytes, Dims* out_dims,
                                    ThreadPool* pool) {
  std::vector<float> out;
  decompress_pwrel_into(bytes, out, out_dims, pool);
  return out;
}

void decompress_pwrel_into(std::span<const std::uint8_t> bytes, std::vector<float>& out,
                           Dims* out_dims, ThreadPool* pool) {
  TRACE_SPAN("sz.pwrel.decompress");
  std::size_t pos = 0;
  require_format(read_u32(bytes, pos) == kMagic, "pwrel: bad magic");
  const std::uint64_t count = read_u64(bytes, pos);
  require_format(pos < bytes.size(), "pwrel: truncated stream");
  const bool class_lz = bytes[pos++] == 1;
  const std::uint64_t thresh_bits = read_u64(bytes, pos);
  double thresh;
  std::memcpy(&thresh, &thresh_bits, 8);
  (void)thresh;
  const std::size_t log_len = read_u64(bytes, pos);
  const std::size_t cls_len = read_u64(bytes, pos);
  // Compare each length against the bytes that remain instead of summing:
  // pos + log_len + cls_len wraps when a corrupted header carries lengths
  // near SIZE_MAX. `count` itself needs no bound here — out.resize(count)
  // only runs after both decoded sections were checked to match it.
  require_format(log_len <= bytes.size() - pos, "pwrel: log section exceeds payload");
  require_format(cls_len <= bytes.size() - pos - log_len, "pwrel: class section exceeds payload");

  Dims dims;
  std::vector<float> logs = decompress(bytes.subspan(pos, log_len), &dims, pool);
  pos += log_len;
  std::vector<std::uint8_t> cls_bytes(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                                      bytes.begin() + static_cast<std::ptrdiff_t>(pos + cls_len));
  if (class_lz) {
    cls_bytes = is_chunked_lzss(cls_bytes) ? lzss_decode_chunked(cls_bytes, pool)
                                           : lzss_decode(cls_bytes);
  }
  const std::vector<std::uint32_t> classes = huffman_decode(cls_bytes, pool);

  require_format(logs.size() == count && classes.size() == count,
                 "pwrel: section size mismatch");
  out.resize(count);
  std::atomic<bool> bad_class{false};
  parallel_for(pool, count, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      switch (classes[i]) {
        case kZero: out[i] = 0.0f; break;
        case kPos: out[i] = std::exp(logs[i]); break;
        case kNeg: out[i] = -std::exp(logs[i]); break;
        default: bad_class.store(true, std::memory_order_relaxed); out[i] = 0.0f; break;
      }
    }
  }, /*min_grain=*/1u << 16);
  if (bad_class.load()) throw FormatError("pwrel: bad class symbol");
  if (out_dims) *out_dims = dims;
}

}  // namespace cosmo::sz
