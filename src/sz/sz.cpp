#include "sz/sz.hpp"

#include <cstring>

#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "common/telemetry.hpp"
#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"

namespace cosmo::sz {

namespace {

constexpr std::uint32_t kMagic = 0x535A4331;  // "SZC1"

/// Little-endian byte buffer serializer.
struct ByteWriter {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void raw(const std::uint8_t* p, std::size_t n) { bytes.insert(bytes.end(), p, p + n); }
};

/// Little-endian byte buffer deserializer with bounds checks.
struct ByteReader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  // Overflow-safe: pos <= size() is an invariant, so compare against the
  // remaining byte count instead of forming pos + n (which wraps when a
  // corrupted header yields n near SIZE_MAX).
  void need(std::size_t n) const {
    require_format(n <= bytes.size() - pos, "sz: truncated stream");
  }
  [[nodiscard]] std::size_t remaining() const { return bytes.size() - pos; }
  std::uint8_t u8() {
    need(1);
    return bytes[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::vector<std::uint8_t> raw(std::size_t n) {
    need(n);
    std::vector<std::uint8_t> out(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return out;
  }
};

/// Enumerates blocks in deterministic (z, y, x) order.
template <typename Fn>
void for_each_block(const Dims& dims, std::size_t edge, Fn&& fn) {
  for (std::size_t z0 = 0; z0 < dims.nz; z0 += edge) {
    for (std::size_t y0 = 0; y0 < dims.ny; y0 += edge) {
      for (std::size_t x0 = 0; x0 < dims.nx; x0 += edge) {
        BlockRange blk;
        blk.x0 = x0;
        blk.x1 = std::min(x0 + edge, dims.nx);
        blk.y0 = y0;
        blk.y1 = std::min(y0 + edge, dims.ny);
        blk.z0 = z0;
        blk.z1 = std::min(z0 + edge, dims.nz);
        fn(blk);
      }
    }
  }
}

/// Materialized block list (same order as for_each_block) with the prefix
/// offsets of each block's quantization codes — the geometry both the
/// block-parallel compress and decompress passes partition on.
struct BlockLayout {
  std::vector<BlockRange> blocks;
  std::vector<std::size_t> code_off;  // size blocks.size() + 1

  BlockLayout(const Dims& dims, std::size_t edge) {
    for_each_block(dims, edge, [this](const BlockRange& blk) { blocks.push_back(blk); });
    code_off.resize(blocks.size() + 1, 0);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      code_off[b + 1] = code_off[b] + blocks[b].count();
    }
  }
};

}  // namespace

std::size_t default_block_edge(int rank) {
  switch (rank) {
    case 1: return 128;
    case 2: return 16;
    default: return 8;
  }
}

std::vector<std::uint8_t> compress(std::span<const float> data, const Dims& dims,
                                   const Params& params, Stats* stats, ThreadPool* pool) {
  std::vector<std::uint8_t> out;
  compress_into(data, dims, params, out, stats, pool);
  return out;
}

void compress_into(std::span<const float> data, const Dims& dims, const Params& params,
                   std::vector<std::uint8_t>& out, Stats* stats, ThreadPool* pool) {
  require(data.size() == dims.count(), "sz::compress: data/dims size mismatch");
  require(!data.empty(), "sz::compress: empty input");
  const std::size_t edge =
      params.block_edge ? params.block_edge : default_block_edge(dims.rank());
  require(edge >= 2, "sz::compress: block edge must be >= 2");

  const Quantizer quant(params.abs_error_bound, params.radius);
  const BlockLayout layout(dims, edge);
  const std::size_t n_blocks = layout.blocks.size();

  // Block-parallel prediction + quantization. Every output is slot-indexed
  // by block (codes at the block's prefix offset, flags/coefs/unpredictable
  // values in per-block slots concatenated in block order below), and
  // lorenzo_predict never reads outside the block, so the result is
  // independent of how blocks are partitioned across threads.
  std::vector<float> recon(data.size(), 0.0f);
  std::vector<std::uint32_t> codes(data.size());
  std::vector<std::uint8_t> block_flags(n_blocks, 0);
  std::vector<RegressionCoef> block_coefs(n_blocks);
  std::vector<std::vector<float>> block_unpred(n_blocks);

  {
    TRACE_SPAN("sz.lorenzo_quantize");
    parallel_for(pool, n_blocks, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      const BlockRange& blk = layout.blocks[b];
      bool use_reg = false;
      RegressionCoef coef;
      if (params.regression && blk.count() >= 8) {
        coef = fit_regression(data, dims, blk);
        const double reg_err = regression_error_estimate(data, dims, blk, coef);
        const double lor_err = lorenzo_error_estimate(data, dims, blk);
        use_reg = reg_err < lor_err;
      }
      block_flags[b] = use_reg ? 1 : 0;
      if (use_reg) block_coefs[b] = coef;
      std::size_t ci = layout.code_off[b];
      // One quantize step: same arithmetic as before, shared by all the
      // prediction variants below.
      const auto quant_at = [&](float pred, std::size_t idx) {
        const Quantizer::Result q = quant.quantize(data[idx], pred);
        codes[ci++] = q.code;
        if (q.code == 0) {
          block_unpred[b].push_back(data[idx]);
          recon[idx] = data[idx];
        } else {
          recon[idx] = q.reconstructed;
        }
      };
      // The use_reg / Lorenzo / boundary decisions are hoisted out of the
      // per-point loop: regression rows are branch-free (the prediction
      // reads no reconstructed neighbors), and Lorenzo interior rows run
      // the direct seven-load stencil — only boundary rows and the x0
      // column pay the general masked lorenzo_predict. Expressions and
      // visit order are unchanged, so codes and streams are byte-identical.
      const int rank = dims.rank();
      const std::size_t nx = dims.nx;
      const std::size_t nxy = dims.nx * dims.ny;
      const std::size_t row_n = blk.x1 - blk.x0;
      for (std::size_t z = blk.z0; z < blk.z1; ++z) {
        const bool zm = z > blk.z0;
        for (std::size_t y = blk.y0; y < blk.y1; ++y) {
          const bool ym = y > blk.y0;
          const std::size_t row = dims.index(blk.x0, y, z);
          if (use_reg) {
            const std::size_t dy = y - blk.y0;
            const std::size_t dz = z - blk.z0;
            for (std::size_t k = 0; k < row_n; ++k) quant_at(coef.predict(k, dy, dz), row + k);
          } else if ((rank == 3 && ym && zm) || (rank == 2 && ym)) {
            quant_at(lorenzo_predict(recon, dims, blk, blk.x0, y, z), row);
            if (rank == 3) {
              for (std::size_t k = 1; k < row_n; ++k) {
                quant_at(lorenzo_predict3_interior(recon.data(), row + k, nx, nxy), row + k);
              }
            } else {
              for (std::size_t k = 1; k < row_n; ++k) {
                quant_at(lorenzo_predict2_interior(recon.data(), row + k, nx), row + k);
              }
            }
          } else {
            for (std::size_t k = 0; k < row_n; ++k) {
              quant_at(lorenzo_predict(recon, dims, blk, blk.x0 + k, y, z), row + k);
            }
          }
        }
      }
    }
    }, /*min_grain=*/1);
  }

  std::size_t n_regression = 0;
  std::vector<RegressionCoef> coefs;
  std::vector<float> unpred;
  for (std::size_t b = 0; b < n_blocks; ++b) {
    if (block_flags[b]) {
      ++n_regression;
      coefs.push_back(block_coefs[b]);
    }
    unpred.insert(unpred.end(), block_unpred[b].begin(), block_unpred[b].end());
  }

  // Chunked container in both the serial and threaded paths: the chunk
  // geometry is a fixed constant, so the bytes match for any thread count.
  std::vector<std::uint8_t> huff;
  {
    TRACE_SPAN("sz.huffman_encode");
    huff = huffman_encode_chunked(codes, pool);
  }

  ByteWriter w;
  w.u32(kMagic);
  w.u64(dims.nx);
  w.u64(dims.ny);
  w.u64(dims.nz);
  w.f64(params.abs_error_bound);
  w.u32(params.radius);
  w.u64(edge);
  w.u64(n_blocks);
  w.u64(coefs.size());
  w.u64(huff.size());
  w.u64(unpred.size());
  w.raw(block_flags.data(), block_flags.size());
  for (const auto& c : coefs) {
    w.f32(c.a);
    w.f32(c.b);
    w.f32(c.c);
    w.f32(c.d);
  }
  w.raw(huff.data(), huff.size());
  for (const float v : unpred) w.f32(v);

  out.clear();
  if (params.lossless) {
    TRACE_SPAN("sz.lzss_encode");
    std::vector<std::uint8_t> packed = lzss_encode_chunked(w.bytes, pool);
    if (packed.size() < w.bytes.size()) {
      out.push_back(1);
      out.insert(out.end(), packed.begin(), packed.end());
    } else {
      out.push_back(0);
      out.insert(out.end(), w.bytes.begin(), w.bytes.end());
    }
  } else {
    out.push_back(0);
    out.insert(out.end(), w.bytes.begin(), w.bytes.end());
  }

  if (stats) {
    stats->total_points = data.size();
    stats->unpredictable_points = unpred.size();
    stats->total_blocks = n_blocks;
    stats->regression_blocks = n_regression;
    stats->compressed_bytes = out.size();
    stats->bit_rate = static_cast<double>(out.size()) * 8.0 / static_cast<double>(data.size());
  }
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes, Dims* out_dims,
                              ThreadPool* pool) {
  std::vector<float> out;
  decompress_into(bytes, out, out_dims, pool);
  return out;
}

void decompress_into(std::span<const std::uint8_t> bytes, std::vector<float>& recon,
                     Dims* out_dims, ThreadPool* pool) {
  require_format(!bytes.empty(), "sz: empty stream");
  const bool packed = bytes[0] == 1;
  std::vector<std::uint8_t> payload_storage;
  std::span<const std::uint8_t> payload;
  if (packed) {
    TRACE_SPAN("sz.lzss_decode");
    const std::vector<std::uint8_t> lossless(bytes.begin() + 1, bytes.end());
    payload_storage =
        is_chunked_lzss(lossless) ? lzss_decode_chunked(lossless, pool) : lzss_decode(lossless);
    payload = payload_storage;
  } else {
    payload = bytes.subspan(1);
  }

  ByteReader r{payload};
  require_format(r.u32() == kMagic, "sz: bad magic");
  Dims dims;
  dims.nx = r.u64();
  dims.ny = r.u64();
  dims.nz = r.u64();
  const double eb = r.f64();
  const std::uint32_t radius = r.u32();
  const std::size_t edge = r.u64();
  const std::size_t n_blocks = r.u64();
  const std::size_t n_coefs = r.u64();
  const std::size_t huff_len = r.u64();
  const std::size_t n_unpred = r.u64();

  // Bound every count against the payload actually present before any
  // allocation sizes on it: a corrupted header must fail with FormatError,
  // not a multi-GB allocation or an infinite block walk (edge == 0 would
  // never advance for_each_block).
  const std::size_t count = checked_stream_count(dims, "sz");
  require_format(edge >= 2, "sz: block edge out of range");
  require_format(n_blocks <= r.remaining(), "sz: block count exceeds payload");
  require_format(n_coefs <= (r.remaining() - n_blocks) / 16,
                 "sz: regression coef count exceeds payload");
  require_format(huff_len <= r.remaining(), "sz: huffman section exceeds payload");
  require_format(n_unpred <= r.remaining() / 4, "sz: unpredictable count exceeds payload");

  const std::vector<std::uint8_t> block_flags = r.raw(n_blocks);
  std::vector<RegressionCoef> coefs(n_coefs);
  for (auto& c : coefs) {
    c.a = r.f32();
    c.b = r.f32();
    c.c = r.f32();
    c.d = r.f32();
  }
  const std::vector<std::uint8_t> huff = r.raw(huff_len);
  std::vector<float> unpred(n_unpred);
  for (auto& v : unpred) v = r.f32();

  std::vector<std::uint32_t> codes;
  {
    TRACE_SPAN("sz.huffman_decode");
    codes = huffman_decode(huff, pool);
  }
  require_format(codes.size() == count, "sz: code count mismatch");

  const BlockLayout layout(dims, edge);
  require_format(layout.blocks.size() == n_blocks, "sz: block count mismatch");
  require_format(block_flags.size() == n_blocks, "sz: block metadata underrun");

  // Recover each block's unpredictable-value and regression-coef offsets by
  // prefix sums (a block's unpredictable count is the number of zero codes
  // in its code slice), then reconstruct block-parallel.
  std::vector<std::size_t> unpred_off(n_blocks + 1, 0);
  std::vector<std::size_t> coef_off(n_blocks + 1, 0);
  parallel_for(pool, n_blocks, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      std::size_t zeros = 0;
      for (std::size_t i = layout.code_off[b]; i < layout.code_off[b + 1]; ++i) {
        if (codes[i] == 0) ++zeros;
      }
      unpred_off[b + 1] = zeros;  // raw counts; prefix-summed below
    }
  }, /*min_grain=*/1);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    unpred_off[b + 1] += unpred_off[b];
    coef_off[b + 1] = coef_off[b] + (block_flags[b] ? 1 : 0);
  }
  require_format(unpred_off[n_blocks] == unpred.size(), "sz: unpredictable count mismatch");
  require_format(coef_off[n_blocks] == coefs.size(), "sz: regression coef count mismatch");

  const Quantizer quant(eb, radius);
  recon.assign(count, 0.0f);
  TRACE_SPAN("sz.reconstruct");
  parallel_for(pool, n_blocks, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      const BlockRange& blk = layout.blocks[b];
      const bool use_reg = block_flags[b] != 0;
      const RegressionCoef coef = use_reg ? coefs[coef_off[b]] : RegressionCoef{};
      std::size_t code_idx = layout.code_off[b];
      std::size_t unpred_idx = unpred_off[b];
      for (std::size_t z = blk.z0; z < blk.z1; ++z) {
        for (std::size_t y = blk.y0; y < blk.y1; ++y) {
          for (std::size_t x = blk.x0; x < blk.x1; ++x) {
            const std::size_t idx = dims.index(x, y, z);
            const std::uint32_t code = codes[code_idx++];
            if (code == 0) {
              recon[idx] = unpred[unpred_idx++];
            } else {
              const float pred = use_reg
                                     ? coef.predict(x - blk.x0, y - blk.y0, z - blk.z0)
                                     : lorenzo_predict(recon, dims, blk, x, y, z);
              recon[idx] = quant.reconstruct(code, pred);
            }
          }
        }
      }
    }
  }, /*min_grain=*/1);

  if (out_dims) *out_dims = dims;
}

}  // namespace cosmo::sz
