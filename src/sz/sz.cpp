#include "sz/sz.hpp"

#include <cstring>

#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"

namespace cosmo::sz {

namespace {

constexpr std::uint32_t kMagic = 0x535A4331;  // "SZC1"

/// Little-endian byte buffer serializer.
struct ByteWriter {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void raw(const std::uint8_t* p, std::size_t n) { bytes.insert(bytes.end(), p, p + n); }
};

/// Little-endian byte buffer deserializer with bounds checks.
struct ByteReader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    require_format(pos + n <= bytes.size(), "sz: truncated stream");
  }
  std::uint8_t u8() {
    need(1);
    return bytes[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::vector<std::uint8_t> raw(std::size_t n) {
    need(n);
    std::vector<std::uint8_t> out(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return out;
  }
};

/// Enumerates blocks in deterministic (z, y, x) order.
template <typename Fn>
void for_each_block(const Dims& dims, std::size_t edge, Fn&& fn) {
  for (std::size_t z0 = 0; z0 < dims.nz; z0 += edge) {
    for (std::size_t y0 = 0; y0 < dims.ny; y0 += edge) {
      for (std::size_t x0 = 0; x0 < dims.nx; x0 += edge) {
        BlockRange blk;
        blk.x0 = x0;
        blk.x1 = std::min(x0 + edge, dims.nx);
        blk.y0 = y0;
        blk.y1 = std::min(y0 + edge, dims.ny);
        blk.z0 = z0;
        blk.z1 = std::min(z0 + edge, dims.nz);
        fn(blk);
      }
    }
  }
}

}  // namespace

std::size_t default_block_edge(int rank) {
  switch (rank) {
    case 1: return 128;
    case 2: return 16;
    default: return 8;
  }
}

std::vector<std::uint8_t> compress(std::span<const float> data, const Dims& dims,
                                   const Params& params, Stats* stats) {
  std::vector<std::uint8_t> out;
  compress_into(data, dims, params, out, stats);
  return out;
}

void compress_into(std::span<const float> data, const Dims& dims, const Params& params,
                   std::vector<std::uint8_t>& out, Stats* stats) {
  require(data.size() == dims.count(), "sz::compress: data/dims size mismatch");
  require(!data.empty(), "sz::compress: empty input");
  const std::size_t edge =
      params.block_edge ? params.block_edge : default_block_edge(dims.rank());
  require(edge >= 2, "sz::compress: block edge must be >= 2");

  const Quantizer quant(params.abs_error_bound, params.radius);
  std::vector<float> recon(data.size(), 0.0f);
  std::vector<std::uint32_t> codes;
  codes.reserve(data.size());
  std::vector<float> unpred;
  std::vector<std::uint8_t> block_flags;  // 1 = regression
  std::vector<RegressionCoef> coefs;

  std::size_t n_blocks = 0;
  std::size_t n_regression = 0;

  for_each_block(dims, edge, [&](const BlockRange& blk) {
    ++n_blocks;
    bool use_reg = false;
    RegressionCoef coef;
    if (params.regression && blk.count() >= 8) {
      coef = fit_regression(data, dims, blk);
      const double reg_err = regression_error_estimate(data, dims, blk, coef);
      const double lor_err = lorenzo_error_estimate(data, dims, blk);
      use_reg = reg_err < lor_err;
    }
    block_flags.push_back(use_reg ? 1 : 0);
    if (use_reg) {
      ++n_regression;
      coefs.push_back(coef);
    }
    for (std::size_t z = blk.z0; z < blk.z1; ++z) {
      for (std::size_t y = blk.y0; y < blk.y1; ++y) {
        for (std::size_t x = blk.x0; x < blk.x1; ++x) {
          const std::size_t idx = dims.index(x, y, z);
          const float pred = use_reg
                                 ? coef.predict(x - blk.x0, y - blk.y0, z - blk.z0)
                                 : lorenzo_predict(recon, dims, blk, x, y, z);
          const Quantizer::Result q = quant.quantize(data[idx], pred);
          codes.push_back(q.code);
          if (q.code == 0) {
            unpred.push_back(data[idx]);
            recon[idx] = data[idx];
          } else {
            recon[idx] = q.reconstructed;
          }
        }
      }
    }
  });

  const std::vector<std::uint8_t> huff = huffman_encode(codes);

  ByteWriter w;
  w.u32(kMagic);
  w.u64(dims.nx);
  w.u64(dims.ny);
  w.u64(dims.nz);
  w.f64(params.abs_error_bound);
  w.u32(params.radius);
  w.u64(edge);
  w.u64(n_blocks);
  w.u64(coefs.size());
  w.u64(huff.size());
  w.u64(unpred.size());
  w.raw(block_flags.data(), block_flags.size());
  for (const auto& c : coefs) {
    w.f32(c.a);
    w.f32(c.b);
    w.f32(c.c);
    w.f32(c.d);
  }
  w.raw(huff.data(), huff.size());
  for (const float v : unpred) w.f32(v);

  out.clear();
  if (params.lossless) {
    std::vector<std::uint8_t> packed = lzss_encode(w.bytes);
    if (packed.size() < w.bytes.size()) {
      out.push_back(1);
      out.insert(out.end(), packed.begin(), packed.end());
    } else {
      out.push_back(0);
      out.insert(out.end(), w.bytes.begin(), w.bytes.end());
    }
  } else {
    out.push_back(0);
    out.insert(out.end(), w.bytes.begin(), w.bytes.end());
  }

  if (stats) {
    stats->total_points = data.size();
    stats->unpredictable_points = unpred.size();
    stats->total_blocks = n_blocks;
    stats->regression_blocks = n_regression;
    stats->compressed_bytes = out.size();
    stats->bit_rate = static_cast<double>(out.size()) * 8.0 / static_cast<double>(data.size());
  }
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes, Dims* out_dims) {
  std::vector<float> out;
  decompress_into(bytes, out, out_dims);
  return out;
}

void decompress_into(std::span<const std::uint8_t> bytes, std::vector<float>& recon,
                     Dims* out_dims) {
  require_format(!bytes.empty(), "sz: empty stream");
  const bool packed = bytes[0] == 1;
  std::vector<std::uint8_t> payload_storage;
  std::span<const std::uint8_t> payload;
  if (packed) {
    payload_storage = lzss_decode(
        std::vector<std::uint8_t>(bytes.begin() + 1, bytes.end()));
    payload = payload_storage;
  } else {
    payload = bytes.subspan(1);
  }

  ByteReader r{payload};
  require_format(r.u32() == kMagic, "sz: bad magic");
  Dims dims;
  dims.nx = r.u64();
  dims.ny = r.u64();
  dims.nz = r.u64();
  const double eb = r.f64();
  const std::uint32_t radius = r.u32();
  const std::size_t edge = r.u64();
  const std::size_t n_blocks = r.u64();
  const std::size_t n_coefs = r.u64();
  const std::size_t huff_len = r.u64();
  const std::size_t n_unpred = r.u64();

  const std::vector<std::uint8_t> block_flags = r.raw(n_blocks);
  std::vector<RegressionCoef> coefs(n_coefs);
  for (auto& c : coefs) {
    c.a = r.f32();
    c.b = r.f32();
    c.c = r.f32();
    c.d = r.f32();
  }
  const std::vector<std::uint8_t> huff = r.raw(huff_len);
  std::vector<float> unpred(n_unpred);
  for (auto& v : unpred) v = r.f32();

  const std::vector<std::uint32_t> codes = huffman_decode(huff);
  require_format(codes.size() == dims.count(), "sz: code count mismatch");

  const Quantizer quant(eb, radius);
  recon.assign(dims.count(), 0.0f);
  std::size_t block_idx = 0;
  std::size_t coef_idx = 0;
  std::size_t code_idx = 0;
  std::size_t unpred_idx = 0;

  for_each_block(dims, edge, [&](const BlockRange& blk) {
    require_format(block_idx < block_flags.size(), "sz: block metadata underrun");
    const bool use_reg = block_flags[block_idx++] != 0;
    RegressionCoef coef;
    if (use_reg) {
      require_format(coef_idx < coefs.size(), "sz: regression coef underrun");
      coef = coefs[coef_idx++];
    }
    for (std::size_t z = blk.z0; z < blk.z1; ++z) {
      for (std::size_t y = blk.y0; y < blk.y1; ++y) {
        for (std::size_t x = blk.x0; x < blk.x1; ++x) {
          const std::size_t idx = dims.index(x, y, z);
          const std::uint32_t code = codes[code_idx++];
          if (code == 0) {
            require_format(unpred_idx < unpred.size(), "sz: unpredictable underrun");
            recon[idx] = unpred[unpred_idx++];
          } else {
            const float pred = use_reg
                                   ? coef.predict(x - blk.x0, y - blk.y0, z - blk.z0)
                                   : lorenzo_predict(recon, dims, blk, x, y, z);
            recon[idx] = quant.reconstruct(code, pred);
          }
        }
      }
    }
  });
  require_format(unpred_idx == unpred.size(), "sz: unused unpredictable values");

  if (out_dims) *out_dims = dims;
}

}  // namespace cosmo::sz
