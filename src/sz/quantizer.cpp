#include "sz/quantizer.hpp"

#include "common/error.hpp"

namespace cosmo::sz {

Quantizer::Quantizer(double error_bound, std::uint32_t radius)
    : eb_(error_bound), radius_(radius) {
  require(error_bound > 0.0, "Quantizer: error bound must be positive");
  require(radius >= 2, "Quantizer: radius must be >= 2");
}

}  // namespace cosmo::sz
