#include "sz/quantizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cosmo::sz {

Quantizer::Quantizer(double error_bound, std::uint32_t radius)
    : eb_(error_bound), radius_(radius) {
  require(error_bound > 0.0, "Quantizer: error bound must be positive");
  require(radius >= 2, "Quantizer: radius must be >= 2");
}

Quantizer::Result Quantizer::quantize(float original, float predicted) const {
  const double diff = static_cast<double>(original) - static_cast<double>(predicted);
  const double scaled = diff / (2.0 * eb_);
  const double rounded = std::nearbyint(scaled);
  if (std::fabs(rounded) >= static_cast<double>(radius_)) {
    return {0, 0.0f};  // outside code space -> unpredictable
  }
  const std::uint32_t code =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(rounded) + radius_);
  const float recon = reconstruct(code, predicted);
  // Guard against float rounding breaking the bound (rare, near eb edges).
  if (std::fabs(static_cast<double>(recon) - static_cast<double>(original)) > eb_) {
    return {0, 0.0f};
  }
  return {code, recon};
}

float Quantizer::reconstruct(std::uint32_t code, float predicted) const {
  const std::int64_t offset = static_cast<std::int64_t>(code) - radius_;
  return static_cast<float>(static_cast<double>(predicted) +
                            static_cast<double>(offset) * 2.0 * eb_);
}

}  // namespace cosmo::sz
