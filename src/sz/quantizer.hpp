/// \file quantizer.hpp
/// \brief Linear-scaling quantization with error-controlled reconstruction.
///
/// SZ step 2 (paper Section II-A): "quantize the difference between the
/// real value and predicted value based on the user-set error bound."
/// A prediction error e is mapped to code round(e / (2*eb)) + radius; codes
/// within [1, 2*radius-1] are "predictable" and reconstruct to
/// pred + (code - radius) * 2*eb, which is within eb of the original.
/// Code 0 marks an unpredictable point whose value is stored verbatim.
#pragma once

#include <cstdint>
#include <optional>

namespace cosmo::sz {

/// Error-bounded linear quantizer.
class Quantizer {
 public:
  /// \p error_bound is the absolute bound; \p radius the code-space half
  /// width (default 2^15, i.e. 16-bit code space like SZ's default).
  explicit Quantizer(double error_bound, std::uint32_t radius = 1u << 15);

  [[nodiscard]] double error_bound() const { return eb_; }
  [[nodiscard]] std::uint32_t radius() const { return radius_; }

  /// Quantizes an (original, predicted) pair. Returns the code and the
  /// reconstructed value, or code 0 (unpredictable) when the error exceeds
  /// the code space or reconstruction would break the bound.
  struct Result {
    std::uint32_t code;  ///< 0 = unpredictable
    float reconstructed; ///< valid only when code != 0
  };
  [[nodiscard]] Result quantize(float original, float predicted) const;

  /// Reconstructs from a nonzero code and prediction.
  [[nodiscard]] float reconstruct(std::uint32_t code, float predicted) const;

 private:
  double eb_;
  std::uint32_t radius_;
};

}  // namespace cosmo::sz
