/// \file quantizer.hpp
/// \brief Linear-scaling quantization with error-controlled reconstruction.
///
/// SZ step 2 (paper Section II-A): "quantize the difference between the
/// real value and predicted value based on the user-set error bound."
/// A prediction error e is mapped to code round(e / (2*eb)) + radius; codes
/// within [1, 2*radius-1] are "predictable" and reconstruct to
/// pred + (code - radius) * 2*eb, which is within eb of the original.
/// Code 0 marks an unpredictable point whose value is stored verbatim.
///
/// quantize()/reconstruct() are defined inline here (not in the .cpp): they
/// run once per sample inside the prediction loops, and the call previously
/// crossed a translation-unit boundary on every point. The arithmetic is
/// unchanged — same double-precision expressions, same nearbyint — so codes
/// and reconstructions are bit-identical to the out-of-line version.
#pragma once

#include <cmath>
#include <cstdint>

namespace cosmo::sz {

/// Error-bounded linear quantizer.
class Quantizer {
 public:
  /// \p error_bound is the absolute bound; \p radius the code-space half
  /// width (default 2^15, i.e. 16-bit code space like SZ's default).
  explicit Quantizer(double error_bound, std::uint32_t radius = 1u << 15);

  [[nodiscard]] double error_bound() const { return eb_; }
  [[nodiscard]] std::uint32_t radius() const { return radius_; }

  /// Quantizes an (original, predicted) pair. Returns the code and the
  /// reconstructed value, or code 0 (unpredictable) when the error exceeds
  /// the code space or reconstruction would break the bound.
  struct Result {
    std::uint32_t code;  ///< 0 = unpredictable
    float reconstructed; ///< valid only when code != 0
  };
  [[nodiscard]] Result quantize(float original, float predicted) const {
    const double diff = static_cast<double>(original) - static_cast<double>(predicted);
    const double scaled = diff / (2.0 * eb_);
    const double rounded = std::nearbyint(scaled);
    if (std::fabs(rounded) >= static_cast<double>(radius_)) {
      return {0, 0.0f};  // outside code space -> unpredictable
    }
    const std::uint32_t code =
        static_cast<std::uint32_t>(static_cast<std::int64_t>(rounded) + radius_);
    const float recon = reconstruct(code, predicted);
    // Guard against float rounding breaking the bound (rare, near eb edges).
    if (std::fabs(static_cast<double>(recon) - static_cast<double>(original)) > eb_) {
      return {0, 0.0f};
    }
    return {code, recon};
  }

  /// Reconstructs from a nonzero code and prediction.
  [[nodiscard]] float reconstruct(std::uint32_t code, float predicted) const {
    const std::int64_t offset = static_cast<std::int64_t>(code) - radius_;
    return static_cast<float>(static_cast<double>(predicted) +
                              static_cast<double>(offset) * 2.0 * eb_);
  }

 private:
  double eb_;
  std::uint32_t radius_;
};

}  // namespace cosmo::sz
