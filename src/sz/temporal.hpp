/// \file temporal.hpp
/// \brief Time-based SZ compression for snapshot sequences.
///
/// Implements the adjacent-snapshot optimization the paper's related work
/// describes (Li et al. [41]): cosmological data has "very low smoothness
/// in space" but strong coherence in time, so predicting each point from
/// the *previous reconstructed snapshot* beats spatial prediction once the
/// cadence is fine enough. The first frame is compressed spatially; each
/// following frame quantizes the temporal residual with the same
/// error-bound machinery (so the ABS guarantee holds per point, per frame).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/field.hpp"
#include "sz/sz.hpp"

namespace cosmo::sz {

struct TemporalParams {
  double abs_error_bound = 1e-3;
  /// Spatial-compression knobs for the first (key) frame.
  std::size_t block_edge = 0;
  bool regression = true;
  bool lossless = true;
  /// Re-key every N frames (1 = all spatial, i.e. no temporal prediction).
  std::size_t key_interval = 0;  ///< 0 = single key frame at t = 0
};

struct TemporalStats {
  std::size_t frames = 0;
  std::size_t key_frames = 0;
  std::size_t compressed_bytes = 0;
  double bit_rate = 0.0;  ///< bits per value across the whole sequence
};

/// Compresses a sequence of equally shaped frames.
std::vector<std::uint8_t> compress_temporal(const std::vector<Field>& frames,
                                            const TemporalParams& params,
                                            TemporalStats* stats = nullptr);

/// Decompresses a buffer produced by compress_temporal().
std::vector<Field> decompress_temporal(std::span<const std::uint8_t> bytes);

}  // namespace cosmo::sz
