/// \file rate_estimate.hpp
/// \brief Fast compressed-bitrate estimation from quantization-code entropy.
///
/// CBench exists because "distortion metrics ... may not have a
/// bijective-function relationship with user-set error bound on the
/// real-world datasets" (paper Section IV-A1) — finding a best-fit bound
/// needs trial compression. A full SZ run per candidate is the dominant
/// optimizer cost; this estimator runs only the prediction + quantization
/// stages (no Huffman, no LZSS, no stream assembly) and bounds the
/// achievable rate by the Shannon entropy of the code distribution, making
/// candidate pre-filtering ~3-5x cheaper. The guided optimizer uses it to
/// predict compression ratios for pruned candidates of codecs that declare
/// CodecCapabilities::abs_rate_estimable.
#pragma once

#include <span>

#include "common/field.hpp"
#include "sz/sz.hpp"

namespace cosmo::sz {

/// Estimate of the compressed size an ABS-mode run would produce.
struct RateEstimate {
  double entropy_bits_per_value = 0.0;  ///< code-distribution Shannon entropy
  double unpredictable_fraction = 0.0;  ///< values stored verbatim
  /// Estimated total bits/value: entropy + 32 * unpredictable fraction +
  /// per-block metadata overhead. A lower bound on Huffman, usually within
  /// ~15% of the real stream (the LZSS stage can go below it on highly
  /// repetitive codes).
  double estimated_bits_per_value = 0.0;
  std::size_t sampled_blocks = 0;  ///< blocks actually quantized
  std::size_t total_blocks = 0;    ///< blocks the full field has
};

/// Runs prediction + quantization only (same blocking and predictor
/// selection as compress()) and returns the entropy-based rate estimate.
/// \p block_stride > 1 samples every Nth block (deterministic, first block
/// always included) and extrapolates per-value statistics from the sample;
/// SZ prediction is block-local, so sampled blocks quantize exactly as a
/// full run would. Stride 1 processes every block.
RateEstimate estimate_rate(std::span<const float> data, const Dims& dims,
                           const Params& params, std::size_t block_stride = 1);

}  // namespace cosmo::sz
