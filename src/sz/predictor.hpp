/// \file predictor.hpp
/// \brief SZ prediction stage: order-1 Lorenzo and block linear regression.
///
/// SZ step 1 (paper Section II-A): "predict each data point's value based on
/// its neighboring points by using an adaptive, best-fit prediction method."
/// Following SZ 2.x (Liang et al. [11]), each block independently selects
/// between the Lorenzo predictor (neighbors within the block, causal order)
/// and a least-squares linear model over block coordinates. Independent
/// blocking reproduces the GPU-SZ border-decorrelation artifact the paper
/// discusses for low bitrates.
#pragma once

#include <cstddef>
#include <span>

#include "common/field.hpp"

namespace cosmo::sz {

/// A block's coordinate range within the field (half-open).
struct BlockRange {
  std::size_t x0 = 0, x1 = 0;
  std::size_t y0 = 0, y1 = 0;
  std::size_t z0 = 0, z1 = 0;

  [[nodiscard]] std::size_t count() const { return (x1 - x0) * (y1 - y0) * (z1 - z0); }
};

/// Order-1 Lorenzo prediction at (x, y, z) from the *reconstructed* buffer
/// \p recon, restricted to the block: neighbors outside \p blk predict as 0.
/// Rank 1: f(x-1); rank 2: f(x-1)+f(y-1)-f(x-1,y-1); rank 3: the 7-term
/// inclusion–exclusion stencil.
float lorenzo_predict(std::span<const float> recon, const Dims& dims, const BlockRange& blk,
                      std::size_t x, std::size_t y, std::size_t z);

/// Interior fast path of the rank-3 stencil: the caller guarantees
/// x > x0, y > y0, z > z0, so all seven neighbors are in-block and the
/// per-point boundary masking disappears — the loop body is seven loads
/// and the inclusion–exclusion sum. Terms are combined in exactly the
/// order lorenzo_predict uses, so the result is bit-identical to it.
/// \p idx is the linear index of (x, y, z); \p nx and \p nxy are the row
/// and slab strides.
inline float lorenzo_predict3_interior(const float* recon, std::size_t idx, std::size_t nx,
                                       std::size_t nxy) {
  const float f100 = recon[idx - 1];
  const float f010 = recon[idx - nx];
  const float f001 = recon[idx - nxy];
  const float f110 = recon[idx - 1 - nx];
  const float f101 = recon[idx - 1 - nxy];
  const float f011 = recon[idx - nx - nxy];
  const float f111 = recon[idx - 1 - nx - nxy];
  return f100 + f010 + f001 - f110 - f101 - f011 + f111;
}

/// Rank-2 interior fast path (x > x0, y > y0); same bit-identity contract.
inline float lorenzo_predict2_interior(const float* recon, std::size_t idx, std::size_t nx) {
  return recon[idx - 1] + recon[idx - nx] - recon[idx - 1 - nx];
}

/// Coefficients of the block-local linear model
/// f(x,y,z) = a*dx + b*dy + c*dz + d with (dx,dy,dz) relative to the block
/// origin. Fit on original data; stored verbatim in the stream.
struct RegressionCoef {
  float a = 0.0f, b = 0.0f, c = 0.0f, d = 0.0f;

  [[nodiscard]] float predict(std::size_t dx, std::size_t dy, std::size_t dz) const {
    return a * static_cast<float>(dx) + b * static_cast<float>(dy) +
           c * static_cast<float>(dz) + d;
  }
};

/// Least-squares fit of the linear model over the block's original values.
/// Closed form: grid coordinates are orthogonal after centering, so each
/// slope is an independent 1-D projection.
RegressionCoef fit_regression(std::span<const float> data, const Dims& dims,
                              const BlockRange& blk);

/// Sum of |prediction error| for the Lorenzo predictor estimated on
/// *original* (not reconstructed) neighbors — the standard SZ sampling
/// shortcut for predictor selection.
double lorenzo_error_estimate(std::span<const float> data, const Dims& dims,
                              const BlockRange& blk);

/// Sum of |prediction error| for the fitted regression model.
double regression_error_estimate(std::span<const float> data, const Dims& dims,
                                 const BlockRange& blk, const RegressionCoef& coef);

}  // namespace cosmo::sz
