/// \file pwrel.hpp
/// \brief Point-wise relative error bound via logarithmic transformation.
///
/// GPU-SZ only supports ABS mode; the paper (Section IV-B4, following
/// Liang et al. [27]) converts a PW_REL bound into an ABS bound on
/// log-transformed data: compress ln|x| with abs bound ln(1 + pwrel), keep
/// sign/zero classes separately, reconstruct with exp. This module wraps
/// sz::compress/decompress with exactly that scheme.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/field.hpp"
#include "sz/sz.hpp"

namespace cosmo::sz {

/// PW_REL parameters: relative bound and the underlying ABS-mode knobs.
struct PwRelParams {
  /// Point-wise relative error bound, e.g. 0.01 for 1 %.
  double pw_rel_bound = 0.01;
  /// Values with |x| <= zero_threshold * max|x| are treated as exact zeros.
  /// 0 selects the default 1e-10.
  double zero_threshold_ratio = 0.0;
  /// Block/lossless knobs forwarded to the ABS compressor.
  std::size_t block_edge = 0;
  bool regression = true;
  bool lossless = true;
};

/// Compresses with a point-wise relative bound. Guarantees, for every point
/// with |x| above the zero threshold, |x' - x| <= pw_rel_bound * |x|;
/// sub-threshold points reconstruct to exactly 0. The log transform, the
/// inner ABS compressor, and the class stream all thread on \p pool with
/// thread-count-independent output.
std::vector<std::uint8_t> compress_pwrel(std::span<const float> data, const Dims& dims,
                                         const PwRelParams& params, Stats* stats = nullptr,
                                         ThreadPool* pool = nullptr);

/// compress_pwrel() variant writing into \p out (cleared first, capacity
/// reused across repeated sweep iterations).
void compress_pwrel_into(std::span<const float> data, const Dims& dims,
                         const PwRelParams& params, std::vector<std::uint8_t>& out,
                         Stats* stats = nullptr, ThreadPool* pool = nullptr);

/// Decompresses a buffer produced by compress_pwrel().
std::vector<float> decompress_pwrel(std::span<const std::uint8_t> bytes,
                                    Dims* out_dims = nullptr, ThreadPool* pool = nullptr);

/// decompress_pwrel() variant writing into \p out (capacity reused).
void decompress_pwrel_into(std::span<const std::uint8_t> bytes, std::vector<float>& out,
                           Dims* out_dims = nullptr, ThreadPool* pool = nullptr);

/// True when \p bytes starts with the PW_REL stream magic ("SZPR"). ABS
/// streams begin with the one-byte lossless flag (0 or 1), so the first
/// bytes disambiguate the two dialects.
[[nodiscard]] bool is_pwrel_stream(std::span<const std::uint8_t> bytes);

}  // namespace cosmo::sz
