#include "sz/temporal.hpp"

#include <cstring>

#include "codec/huffman.hpp"
#include "common/str.hpp"
#include "codec/lzss.hpp"
#include "sz/quantizer.hpp"

namespace cosmo::sz {

namespace {

constexpr std::uint32_t kMagic = 0x535A544D;  // "SZTM"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}
void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  put_u32(out, bits);
}

struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    require_format(pos + n <= bytes.size(), "sz-temporal: truncated stream");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  std::span<const std::uint8_t> raw(std::size_t n) {
    need(n);
    auto out = bytes.subspan(pos, n);
    pos += n;
    return out;
  }
};

}  // namespace

std::vector<std::uint8_t> compress_temporal(const std::vector<Field>& frames,
                                            const TemporalParams& params,
                                            TemporalStats* stats) {
  require(!frames.empty(), "compress_temporal: no frames");
  const Dims dims = frames.front().dims;
  for (const auto& f : frames) {
    require(f.dims == dims, "compress_temporal: frame shape mismatch");
  }

  Params spatial;
  spatial.abs_error_bound = params.abs_error_bound;
  spatial.block_edge = params.block_edge;
  spatial.regression = params.regression;
  spatial.lossless = params.lossless;

  const Quantizer quant(params.abs_error_bound);
  std::vector<float> prev_recon;

  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u64(out, frames.size());
  put_u64(out, dims.nx);
  put_u64(out, dims.ny);
  put_u64(out, dims.nz);
  put_f64(out, params.abs_error_bound);

  std::size_t key_frames = 0;
  for (std::size_t t = 0; t < frames.size(); ++t) {
    const bool key = t == 0 || (params.key_interval > 0 && t % params.key_interval == 0);
    out.push_back(key ? 1 : 0);
    const auto& data = frames[t].data;
    if (key) {
      ++key_frames;
      const auto frame_bytes = compress(data, dims, spatial);
      put_u64(out, frame_bytes.size());
      out.insert(out.end(), frame_bytes.begin(), frame_bytes.end());
      prev_recon = decompress(frame_bytes);
    } else {
      // Temporal prediction: each point predicted by its own previous
      // reconstructed value.
      std::vector<std::uint32_t> codes(data.size());
      std::vector<float> unpred;
      std::vector<float> recon(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        const Quantizer::Result q = quant.quantize(data[i], prev_recon[i]);
        codes[i] = q.code;
        if (q.code == 0) {
          unpred.push_back(data[i]);
          recon[i] = data[i];
        } else {
          recon[i] = q.reconstructed;
        }
      }
      std::vector<std::uint8_t> huff = huffman_encode(codes);
      bool used_lzss = false;
      if (params.lossless) {
        std::vector<std::uint8_t> packed = lzss_encode(huff);
        if (packed.size() < huff.size()) {
          huff = std::move(packed);
          used_lzss = true;
        }
      }
      out.push_back(used_lzss ? 1 : 0);
      put_u64(out, huff.size());
      put_u64(out, unpred.size());
      out.insert(out.end(), huff.begin(), huff.end());
      for (const float v : unpred) put_f32(out, v);
      prev_recon = std::move(recon);
    }
  }

  if (stats) {
    stats->frames = frames.size();
    stats->key_frames = key_frames;
    stats->compressed_bytes = out.size();
    stats->bit_rate = static_cast<double>(out.size()) * 8.0 /
                      (static_cast<double>(dims.count()) * static_cast<double>(frames.size()));
  }
  return out;
}

std::vector<Field> decompress_temporal(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  require_format(r.u32() == kMagic, "sz-temporal: bad magic");
  const std::uint64_t frame_count = r.u64();
  Dims dims;
  dims.nx = r.u64();
  dims.ny = r.u64();
  dims.nz = r.u64();
  const double eb = r.f64();
  const Quantizer quant(eb);

  std::vector<Field> out;
  out.reserve(frame_count);
  std::vector<float> prev_recon;
  for (std::uint64_t t = 0; t < frame_count; ++t) {
    r.need(1);
    const bool key = r.bytes[r.pos++] == 1;
    if (key) {
      const std::size_t len = r.u64();
      const auto section = r.raw(len);
      Field frame(strprintf("frame_t%03llu", static_cast<unsigned long long>(t)), dims,
                  decompress(section));
      prev_recon = frame.data;
      out.push_back(std::move(frame));
    } else {
      r.need(1);
      const bool packed = r.bytes[r.pos++] == 1;
      const std::size_t huff_len = r.u64();
      const std::size_t unpred_count = r.u64();
      const auto huff_span = r.raw(huff_len);
      std::vector<std::uint8_t> huff(huff_span.begin(), huff_span.end());
      if (packed) huff = lzss_decode(huff);
      const std::vector<std::uint32_t> codes = huffman_decode(huff);
      require_format(codes.size() == dims.count(), "sz-temporal: code count mismatch");
      std::vector<float> unpred(unpred_count);
      for (auto& v : unpred) v = r.f32();

      Field frame(strprintf("frame_t%03llu", static_cast<unsigned long long>(t)), dims);
      std::size_t u = 0;
      for (std::size_t i = 0; i < codes.size(); ++i) {
        if (codes[i] == 0) {
          require_format(u < unpred.size(), "sz-temporal: unpredictable underrun");
          frame.data[i] = unpred[u++];
        } else {
          frame.data[i] = quant.reconstruct(codes[i], prev_recon[i]);
        }
      }
      prev_recon = frame.data;
      out.push_back(std::move(frame));
    }
  }
  return out;
}

}  // namespace cosmo::sz
