/// \file sz.hpp
/// \brief SZ-style prediction-based error-bounded lossy compressor.
///
/// Implements the three-step SZ pipeline of the paper (Section II-A):
///  1. adaptive best-fit prediction (Lorenzo vs block regression),
///  2. error-bound-driven linear-scaling quantization,
///  3. customized Huffman coding plus a lossless (LZSS) stage.
///
/// Data is processed in independent blocks, mirroring GPU-SZ's blocked
/// memory layout: this is what produces the low-bitrate rate-distortion
/// drop on smooth fields the paper attributes to "dataset blocking ...
/// decorrelates at the block borders".
///
/// The absolute-error-bound guarantee is hard: for every point,
/// |reconstructed - original| <= error_bound.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/field.hpp"
#include "common/thread_pool.hpp"

namespace cosmo::sz {

/// Compression parameters (ABS mode; see pwrel.hpp for PW_REL).
struct Params {
  /// Absolute error bound (must be > 0).
  double abs_error_bound = 1e-3;
  /// Cubic block edge; 0 selects a rank-dependent default (1-D: 128,
  /// 2-D: 16, 3-D: 8).
  std::size_t block_edge = 0;
  /// Enables the per-block regression predictor alternative.
  bool regression = true;
  /// Applies the LZSS lossless stage to the final stream.
  bool lossless = true;
  /// Quantizer code-space half-width.
  std::uint32_t radius = 1u << 15;
};

/// Optional outputs describing what the compressor did.
struct Stats {
  std::size_t total_points = 0;
  std::size_t unpredictable_points = 0;
  std::size_t total_blocks = 0;
  std::size_t regression_blocks = 0;
  std::size_t compressed_bytes = 0;
  double bit_rate = 0.0;  ///< compressed bits per value
};

/// Compresses a float field; the result is self-describing (stores dims).
/// Blocks are self-contained (Lorenzo never crosses a block border), so the
/// prediction + quantization pass runs block-parallel on \p pool with codes
/// written at deterministic prefix offsets; the entropy and lossless stages
/// use fixed-geometry chunked containers. The stream is byte-identical for
/// any thread count, including the serial pool == nullptr path.
std::vector<std::uint8_t> compress(std::span<const float> data, const Dims& dims,
                                   const Params& params, Stats* stats = nullptr,
                                   ThreadPool* pool = nullptr);

/// compress() variant writing into \p out (cleared first, capacity reused) —
/// the allocation-free path repeated sweep iterations use.
void compress_into(std::span<const float> data, const Dims& dims, const Params& params,
                   std::vector<std::uint8_t>& out, Stats* stats = nullptr,
                   ThreadPool* pool = nullptr);

/// Decompresses a buffer produced by compress(). \p out_dims receives the
/// stored extents when non-null. Block-parallel on \p pool: per-block code
/// and unpredictable-value offsets are recovered by prefix sums before the
/// reconstruction fans out.
std::vector<float> decompress(std::span<const std::uint8_t> bytes, Dims* out_dims = nullptr,
                              ThreadPool* pool = nullptr);

/// decompress() variant writing into \p out (resized in place, capacity
/// reused across repeated calls).
void decompress_into(std::span<const std::uint8_t> bytes, std::vector<float>& out,
                     Dims* out_dims = nullptr, ThreadPool* pool = nullptr);

/// Rank-dependent default block edge used when Params::block_edge == 0.
std::size_t default_block_edge(int rank);

}  // namespace cosmo::sz
