/// \file daemon.hpp
/// \brief foresightd: a fault-contained compression service daemon.
///
/// One Daemon instance is one service: a Unix-domain stream socket (and,
/// when enabled, a TCP listener — both feed the same FrameParser, poll
/// loop, admission and worker pipeline) speaking the length-prefixed JSON
/// protocol (protocol.hpp), an IO thread that accepts connections,
/// reassembles chunked transfers and admits jobs, and a pool of worker
/// threads each owning its own GpuSimulator + SessionCache (sessions are
/// not thread-safe, so isolation is per-worker by construction).
///
/// The robustness contracts, in the order they matter:
///
///  - Bounded admission. Jobs pass through an AdmissionQueue with a
///    capacity limit, per-client outstanding quotas and priority lanes.
///    Over-capacity work is refused immediately with a reason
///    ("queue_full" / "quota" / "draining") — the daemon never buffers
///    unbounded work, and the client always hears back.
///
///  - Exactly one terminal status per request. Rejections are answered by
///    the IO thread at admission time; every admitted job is popped by
///    exactly one worker, which sends exactly one result with status
///    ok / failed / cancelled / deadline.
///
///  - Fault isolation. A failing job (malformed payload, injected
///    corruption, device fault past its retry budget) is contained to its
///    own result row: the worker catches cosmo::Error, reports "failed",
///    and invalidates its SessionCache (sessions + arena) so no partially
///    written scratch state can leak into the next job.
///
///  - Deadlines and cancellation are cooperative. Each job carries a
///    CancelToken (per-request deadline, or the daemon default); workers
///    check it at stage boundaries — before compress, between compress and
///    decompress, before responding — and report "deadline" / "cancelled"
///    as statuses distinct from "failed".
///
///  - Bounded transfer reassembly. Each connection owns a TransferTable
///    whose budget counts declared bytes at chunk_begin time — an
///    over-budget transfer is refused before any buffering. A job that
///    references a transfer is admitted only once that transfer is
///    complete; abandoned transfers are reaped on the IO thread after
///    options().transfer_idle_seconds of silence; a disconnect frees the
///    connection's whole table with it (the reserved-bytes gauge returns
///    to zero). During drain, chunk messages are answered with a
///    "draining" rejection, but transfers referenced by already-admitted
///    jobs stay claimable so those jobs still complete.
///
///  - Graceful drain. request_shutdown() (or one byte written to
///    signal_fd() from a signal handler) stops accepting connections,
///    closes the queue (new jobs → "draining" rejections), lets workers
///    finish the already-admitted backlog, and cancels whatever is still
///    running once the drain budget expires — so shutdown completes in
///    bounded time with every job answered. Final metrics are flushed to
///    options().metrics_out before run() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/admission_queue.hpp"
#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "foresightd/dataset_cache.hpp"
#include "foresightd/protocol.hpp"
#include "io/container.hpp"
#include "json/json.hpp"

namespace cosmo::foresight {
class SessionCache;
}

namespace cosmo::foresightd {

struct DaemonOptions {
  std::string socket_path;           ///< AF_UNIX path (required; unlinked on exit)
  int tcp_port = -1;                 ///< TCP listener port (-1 = disabled, 0 = ephemeral)
  std::string tcp_host = "127.0.0.1";  ///< TCP bind address
  std::size_t workers = 2;           ///< job worker threads
  std::size_t queue_capacity = 64;   ///< admission queue capacity
  std::size_t per_client_quota = 0;  ///< max outstanding jobs per connection (0 = unlimited)
  int priorities = 3;                ///< priority lanes (request priority clamps into range)
  double default_deadline_seconds = 0;  ///< applied when a job carries none (0 = none)
  double drain_budget_seconds = 5.0;    ///< shutdown: grace before in-flight jobs are cancelled
  TransferLimits transfer_limits;       ///< per-connection chunk reassembly bounds
  /// Watchdog reaps a transfer once BOTH it and its connection have seen no
  /// progress/input for this long (input-idle too, so a slow many-second
  /// chunk still in flight never counts as abandoned).
  double transfer_idle_seconds = 30.0;
  std::size_t stream_chunk_bytes = kDefaultChunkBytes;  ///< server→client stream slice
  /// Compress results whose payload exceeds this are streamed in chunks to
  /// proto≥2 clients instead of inlined (0 = only when the frame cap
  /// forces it). Tests lower it to force streaming on small payloads.
  std::uint64_t response_stream_threshold = 0;
  std::uint64_t dataset_cache_bytes = 256ull << 20;  ///< LRU dataset cache budget
  std::string gpu = "Tesla V100";       ///< device spec backing the simulated-GPU codecs
  std::optional<fault::Config> faults;  ///< installed process-wide for the daemon's lifetime
  std::string metrics_out;              ///< metrics JSON flushed here at shutdown ("" = none)
};

/// The service. start() spawns the IO + worker threads; wait() blocks until
/// a shutdown request has fully drained; run() is start()+wait().
class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and spawns the IO, worker and watchdog threads.
  /// Throws IoError when the socket cannot be created.
  void start();

  /// Blocks until shutdown has completed (all threads joined, socket
  /// unlinked, metrics flushed). Requires start().
  void wait();

  /// start() + wait().
  void run() {
    start();
    wait();
  }

  /// Thread-safe drain trigger (also reachable via a "shutdown" request).
  void request_shutdown();

  /// A file descriptor a signal handler may write one byte to (this is the
  /// only async-signal-safe way to stop the daemon). Valid after start().
  [[nodiscard]] int signal_fd() const { return wake_fds_[1]; }

  /// The TCP port actually bound (resolves an ephemeral tcp_port = 0), or
  /// -1 when the TCP listener is disabled. Valid after start().
  [[nodiscard]] int bound_tcp_port() const { return tcp_port_bound_; }

  [[nodiscard]] const DaemonOptions& options() const { return options_; }

  /// Aggregate service counters (also exported through MetricsRegistry;
  /// these are instance-local so concurrent daemons in one test process
  /// don't alias).
  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadline = 0;
    std::uint64_t protocol_errors = 0;
    std::size_t queue_high_water = 0;
    std::uint64_t transfers_completed = 0;
    std::uint64_t transfers_reaped = 0;     ///< watchdog-dropped idle transfers
    std::int64_t transfer_reserved_bytes = 0;  ///< currently buffered across conns
    DatasetCache::Stats dataset_cache;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Conn;
  struct Job {
    JobRequest request;
    CancelToken token;
    std::shared_ptr<Conn> conn;
    std::uint64_t seq = 0;     ///< daemon-wide job sequence (inflight registry key)
    std::uint64_t client = 0;  ///< admitting connection id (quota key)
    Timer queued;              ///< measures queue wait
  };

  void io_loop();
  void worker_loop(std::size_t index);
  void watchdog_loop();
  void begin_drain();
  void cancel_inflight();
  void reap_transfers();
  void handle_frame(const std::shared_ptr<Conn>& conn, const json::Value& frame);
  void handle_chunk(const std::shared_ptr<Conn>& conn, const json::Value& frame);
  void admit_job(const std::shared_ptr<Conn>& conn, JobRequest request);
  void execute_job(Job& job, foresight::SessionCache& cache);
  void run_job(Job& job, foresight::SessionCache& cache, json::Object& reply);
  void stream_payload(Job& job, const std::vector<std::uint8_t>& bytes,
                      json::Object& reply);
  std::shared_ptr<const io::Container> dataset_for(const json::Value& spec);
  static bool send_json(Conn& conn, const json::Value& v);

  DaemonOptions options_;
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  std::optional<fault::Scope> fault_scope_;

  int listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int tcp_port_bound_ = -1;
  int wake_fds_[2] = {-1, -1};
  bool started_ = false;
  bool finished_ = false;

  AdmissionQueue<Job> queue_;
  std::thread io_thread_;
  std::thread watchdog_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> live_workers_{0};

  std::mutex state_mu_;  // guards drain_started_/workers_done_ with done_cv_
  std::condition_variable done_cv_;
  bool drain_started_ = false;
  bool workers_done_ = false;

  std::mutex inflight_mu_;
  std::map<std::uint64_t, CancelToken> inflight_;
  std::uint64_t next_job_seq_ = 1;  // IO thread only

  /// Live connections, for the watchdog's idle-transfer reaping pass.
  /// weak_ptrs: the IO thread (and workers) own lifetime, not the reaper.
  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Conn>> conn_registry_;

  DatasetCache dataset_cache_;

  /// Serializes jobs whose codec sessions cannot run concurrently
  /// (simulated-GPU timing streams, zfp-omp's global pool); their streams
  /// stay byte-identical either way, this keeps modeled timings sane.
  std::mutex serial_mu_;

  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> transfers_completed_{0};
  std::atomic<std::uint64_t> transfers_reaped_{0};
  /// Sum of every connection's reserved transfer bytes (each Conn's
  /// TransferTable points its gauge here); drops to zero when abandoned
  /// buffers are reaped or a disconnect tears the table down.
  std::atomic<std::int64_t> transfer_reserved_{0};
};

}  // namespace cosmo::foresightd
