/// \file api.hpp
/// \brief Typed client surface over the foresightd wire protocol.
///
/// Request structs (CompressRequest, DecompressRequest, RoundtripRequest,
/// SweepRequest) replace hand-built json::Value requests: each serializes
/// through JobRequest — the same validator the daemon parses with — so a
/// request that round-trips here cannot be rejected as malformed. All typed
/// requests carry `proto` = the current protocol version; raw send()/recv()
/// on Client remain the escape hatch for anything the typed surface does
/// not model.
///
/// JobReply is the typed view of any response frame: results (with status /
/// rejection reason), structured errors (error_code, e.g.
/// "unsupported_version"), chunk acks, and control replies. The full frame
/// stays available in `raw`.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "foresightd/protocol.hpp"
#include "json/json.hpp"

namespace cosmo::foresightd {

// ---------------------------------------------------------------------------
// Dataset specs
// ---------------------------------------------------------------------------

/// {type:"nyx", dim, seed} — a generated dim³ Nyx grid.
[[nodiscard]] json::Value nyx_dataset(std::size_t dim, std::uint64_t seed = 42);

/// {type:"hacc", particles, seed} — a generated HACC particle snapshot.
[[nodiscard]] json::Value hacc_dataset(std::size_t particles, std::uint64_t seed = 42);

/// {type:"file", path} — a container file readable by the daemon.
[[nodiscard]] json::Value file_dataset(const std::string& path);

/// {type:"inline", transfer, dims} — raw little-endian float32 previously
/// uploaded as a completed chunked transfer. Inline datasets bypass the
/// daemon's dataset cache (they are connection-local bytes, not a spec the
/// daemon can rebuild).
[[nodiscard]] json::Value inline_dataset(const std::string& transfer, const Dims& dims);

// ---------------------------------------------------------------------------
// Typed requests
// ---------------------------------------------------------------------------

/// Knobs shared by every job type.
struct JobOptions {
  double deadline_seconds = 0;  ///< 0 = daemon default
  int priority = 1;             ///< 0 = highest
};

struct CompressRequest {
  std::string codec;
  std::string mode;
  double value = 0.0;
  json::Value dataset;
  std::string field;
  bool return_bytes = false;
  JobOptions options;

  [[nodiscard]] JobRequest to_request(std::uint64_t id = 0) const;
};

struct DecompressRequest {
  std::string codec;
  std::vector<std::uint8_t> payload;  ///< inline compressed stream (small)
  std::string payload_transfer;       ///< or: completed transfer id (large)
  JobOptions options;

  [[nodiscard]] JobRequest to_request(std::uint64_t id = 0) const;
};

struct RoundtripRequest {
  std::string codec;
  std::string mode;
  double value = 0.0;
  json::Value dataset;
  std::string field;
  JobOptions options;

  [[nodiscard]] JobRequest to_request(std::uint64_t id = 0) const;
};

struct SweepRequest {
  std::string codec;
  json::Value dataset;
  std::string field;
  std::vector<std::pair<std::string, double>> configs;
  JobOptions options;

  [[nodiscard]] JobRequest to_request(std::uint64_t id = 0) const;
};

// ---------------------------------------------------------------------------
// Typed replies
// ---------------------------------------------------------------------------

/// What the daemon advertises in a hello reply.
struct HelloReply {
  int proto_major = 0;
  int proto_minor = 0;
  std::uint64_t max_frame_bytes = 0;
  std::uint64_t max_transfer_bytes = 0;
  std::uint64_t transfer_budget_bytes = 0;
  std::uint64_t chunk_bytes = 0;
  bool draining = false;

  [[nodiscard]] static HelloReply parse(const json::Value& frame);
};

enum class ReplyKind {
  kResult,    ///< terminal job status (including rejections)
  kError,     ///< malformed request / unsupported version
  kChunkAck,  ///< transfer progress (begin/end/abort, or a failed data chunk)
  kPong,
  kHello,
  kMetrics,
  kOk,        ///< shutdown acknowledgement
  kOther,
};

/// Typed view of one response frame. Fields are populated per kind; `raw`
/// always carries the whole frame for anything not modeled here (per-job
/// metrics, sweep rows, ...).
struct JobReply {
  ReplyKind kind = ReplyKind::kOther;
  std::uint64_t id = 0;
  std::string status;          ///< result: ok/failed/rejected/cancelled/deadline
  std::string reason;          ///< result rejections + failed chunk acks
  std::string error;           ///< error frames
  std::string error_code;      ///< structured errors ("unsupported_version")
  std::string transfer;        ///< chunk acks: the transfer id
  bool chunk_ok = false;       ///< chunk acks: accepted?
  bool chunk_completed = false;///< chunk acks: transfer sealed by chunk_end
  std::vector<std::uint8_t> payload;  ///< result: returned compressed bytes
  bool payload_omitted = false;       ///< result: bytes too large, crc only
  std::string payload_transfer;       ///< result: bytes arrived as a stream
  json::Value raw;

  [[nodiscard]] bool ok() const { return kind == ReplyKind::kResult && status == kStatusOk; }
  [[nodiscard]] static JobReply parse(json::Value frame);
};

}  // namespace cosmo::foresightd
