#include "foresightd/dataset_cache.hpp"

#include "common/telemetry.hpp"

namespace cosmo::foresightd {

namespace {

telemetry::Counter& cache_counter(const char* suffix) {
  return telemetry::MetricsRegistry::instance().counter(
      std::string("foresightd.dataset_cache.") + suffix);
}

}  // namespace

DatasetCache::DatasetCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

void DatasetCache::evict_until_fits_locked(std::uint64_t incoming_bytes) {
  while (!lru_.empty() && resident_ + incoming_bytes > capacity_) {
    const std::string& victim = lru_.back();
    const auto it = entries_.find(victim);
    resident_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
    cache_counter("evictions").add();
  }
}

DatasetCache::Value DatasetCache::get_or_build(const std::string& key,
                                               const Builder& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++hits_;
      cache_counter("hits").add();
      return it->second.value;
    }
    ++misses_;
    cache_counter("misses").add();
  }

  Value built = build();
  const auto bytes = static_cast<std::uint64_t>(built->payload_bytes());
  if (bytes > capacity_) return built;  // would evict everything and still not fit

  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(key) != 0) return built;  // a racing build won; keep its entry
  evict_until_fits_locked(bytes);
  lru_.push_front(key);
  Entry& e = entries_[key];
  e.value = built;
  e.bytes = bytes;
  e.lru_it = lru_.begin();
  resident_ += bytes;
  return built;
}

DatasetCache::Stats DatasetCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident_bytes = resident_;
  s.entries = entries_.size();
  return s;
}

}  // namespace cosmo::foresightd
