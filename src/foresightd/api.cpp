#include "foresightd/api.hpp"

#include "common/error.hpp"

namespace cosmo::foresightd {

json::Value nyx_dataset(std::size_t dim, std::uint64_t seed) {
  json::Object o;
  o["type"] = "nyx";
  o["dim"] = static_cast<double>(dim);
  o["seed"] = static_cast<double>(seed);
  return json::Value(std::move(o));
}

json::Value hacc_dataset(std::size_t particles, std::uint64_t seed) {
  json::Object o;
  o["type"] = "hacc";
  o["particles"] = static_cast<double>(particles);
  o["seed"] = static_cast<double>(seed);
  return json::Value(std::move(o));
}

json::Value file_dataset(const std::string& path) {
  json::Object o;
  o["type"] = "file";
  o["path"] = path;
  return json::Value(std::move(o));
}

json::Value inline_dataset(const std::string& transfer, const Dims& dims) {
  json::Object o;
  o["type"] = "inline";
  o["transfer"] = transfer;
  json::Array extents;
  extents.push_back(json::Value(static_cast<double>(dims.nx)));
  if (dims.ny > 1 || dims.nz > 1) extents.push_back(json::Value(static_cast<double>(dims.ny)));
  if (dims.nz > 1) extents.push_back(json::Value(static_cast<double>(dims.nz)));
  o["dims"] = std::move(extents);
  return json::Value(std::move(o));
}

namespace {

JobRequest base_request(RequestType type, std::uint64_t id, const JobOptions& options) {
  JobRequest r;
  r.type = type;
  r.id = id;
  r.proto_major = kProtoMajor;
  r.proto_minor = kProtoMinor;
  r.deadline_seconds = options.deadline_seconds;
  r.priority = options.priority;
  return r;
}

}  // namespace

JobRequest CompressRequest::to_request(std::uint64_t id) const {
  JobRequest r = base_request(RequestType::kCompress, id, options);
  r.codec = codec;
  r.mode = mode;
  r.value = value;
  r.dataset = dataset;
  r.field = field;
  r.return_bytes = return_bytes;
  return r;
}

JobRequest DecompressRequest::to_request(std::uint64_t id) const {
  JobRequest r = base_request(RequestType::kDecompress, id, options);
  r.codec = codec;
  if (!payload_transfer.empty()) {
    r.payload_transfer = payload_transfer;
  } else {
    r.payload_b64 = base64_encode(payload);
  }
  return r;
}

JobRequest RoundtripRequest::to_request(std::uint64_t id) const {
  JobRequest r = base_request(RequestType::kRoundtrip, id, options);
  r.codec = codec;
  r.mode = mode;
  r.value = value;
  r.dataset = dataset;
  r.field = field;
  return r;
}

JobRequest SweepRequest::to_request(std::uint64_t id) const {
  JobRequest r = base_request(RequestType::kSweep, id, options);
  r.codec = codec;
  r.dataset = dataset;
  r.field = field;
  r.configs = configs;
  return r;
}

HelloReply HelloReply::parse(const json::Value& frame) {
  require_format(frame.is_object() && frame.get("type", std::string()) == "hello",
                 "foresightd api: not a hello reply");
  HelloReply h;
  const auto [major, minor] = parse_proto(frame.get("proto", std::string("0")));
  h.proto_major = major;
  h.proto_minor = minor;
  h.max_frame_bytes = static_cast<std::uint64_t>(frame.get("max_frame_bytes", 0.0));
  h.max_transfer_bytes = static_cast<std::uint64_t>(frame.get("max_transfer_bytes", 0.0));
  h.transfer_budget_bytes =
      static_cast<std::uint64_t>(frame.get("transfer_budget_bytes", 0.0));
  h.chunk_bytes = static_cast<std::uint64_t>(frame.get("chunk_bytes", 0.0));
  h.draining = frame.get("draining", false);
  return h;
}

JobReply JobReply::parse(json::Value frame) {
  require_format(frame.is_object(), "foresightd api: reply must be a JSON object");
  JobReply r;
  const std::string type = frame.get("type", std::string());
  const double id = frame.get("id", 0.0);
  if (id > 0) r.id = static_cast<std::uint64_t>(id);
  if (type == "result") {
    r.kind = ReplyKind::kResult;
    r.status = frame.get("status", std::string());
    r.reason = frame.get("reason", std::string());
    r.payload_omitted = frame.get("payload_omitted", false);
    r.payload_transfer = frame.get("payload_transfer", std::string());
    const std::string payload_b64 = frame.get("payload", std::string());
    if (!payload_b64.empty()) r.payload = base64_decode(payload_b64);
  } else if (type == "error") {
    r.kind = ReplyKind::kError;
    r.error = frame.get("error", std::string());
    r.error_code = frame.get("error_code", std::string());
  } else if (type == "chunk_ack") {
    r.kind = ReplyKind::kChunkAck;
    r.transfer = frame.get("transfer", std::string());
    r.chunk_ok = frame.get("ok", false);
    r.chunk_completed = frame.get("completed", false);
    r.reason = frame.get("reason", std::string());
  } else if (type == "pong") {
    r.kind = ReplyKind::kPong;
  } else if (type == "hello") {
    r.kind = ReplyKind::kHello;
  } else if (type == "metrics") {
    r.kind = ReplyKind::kMetrics;
  } else if (type == "ok") {
    r.kind = ReplyKind::kOk;
  }
  r.raw = std::move(frame);
  return r;
}

}  // namespace cosmo::foresightd
