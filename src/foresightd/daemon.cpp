#include "foresightd/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>

#include "analysis/stats.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "foresight/pipeline.hpp"
#include "foresight/session_cache.hpp"
#include "gpu/sim.hpp"
#include "io/crc32.hpp"

namespace cosmo::foresightd {

namespace {

/// Outbound sends block at most this long before the connection is declared
/// dead; a worker must never hang forever on a client that stopped reading.
constexpr double kSendTimeoutSeconds = 5.0;

constexpr const char* kMetricPrefix = "foresightd.";

void set_timeout(int fd, int option, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

telemetry::Counter& counter(const std::string& suffix) {
  return telemetry::MetricsRegistry::instance().counter(kMetricPrefix + suffix);
}

}  // namespace

/// One accepted connection (AF_UNIX or TCP — identical from here on). The
/// IO thread owns reads; any thread may send a response under write_mu. The
/// fd is closed by the destructor, so a worker holding a shared_ptr past
/// the IO thread's erase can still answer safely (the send fails cleanly
/// instead of racing a reused descriptor). The TransferTable dies with the
/// connection, so a mid-transfer disconnect frees its reassembly buffers —
/// and the daemon-wide reserved-bytes gauge — automatically.
struct Daemon::Conn {
  Conn(TransferLimits limits, std::atomic<std::int64_t>* reserved_gauge)
      : transfers(limits, reserved_gauge) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  int fd = -1;
  std::uint64_t id = 0;
  FrameParser parser;
  TransferTable transfers;
  std::mutex write_mu;
  std::atomic<bool> open{true};
  /// Monotonic nanoseconds of the last input read. The transfer reaper
  /// skips connections with recent input: a large chunk frame can take
  /// seconds to arrive and parse, and its transfer must not be declared
  /// idle while the bytes are still flowing.
  std::atomic<std::int64_t> last_input_ns{monotonic_ns()};

  static std::int64_t monotonic_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      queue_({.capacity = options_.queue_capacity,
              .per_client_quota = options_.per_client_quota,
              .priorities = options_.priorities}),
      dataset_cache_(options_.dataset_cache_bytes) {
  require(!options_.socket_path.empty(), "foresightd: socket_path is required");
  if (options_.workers == 0) options_.workers = 1;
}

Daemon::~Daemon() {
  if (started_ && !finished_) {
    request_shutdown();
    wait();
  }
  for (const int fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void Daemon::start() {
  require(!started_, "foresightd: start() called twice");

  if (options_.faults) {
    fault_plan_ = std::make_unique<fault::FaultPlan>(*options_.faults);
    fault_scope_.emplace(*fault_plan_);
  }

  if (::pipe(wake_fds_) != 0) {
    throw IoError("foresightd: pipe() failed: " + std::string(std::strerror(errno)));
  }
  ::fcntl(wake_fds_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_fds_[1], F_SETFL, O_NONBLOCK);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError("foresightd: socket() failed: " + std::string(std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(options_.socket_path.size() < sizeof(addr.sun_path),
          "foresightd: socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("foresightd: cannot listen on " + options_.socket_path + ": " + why);
  }
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);

  if (options_.tcp_port >= 0) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0) {
      throw IoError("foresightd: tcp socket() failed: " +
                    std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in tcp_addr{};
    tcp_addr.sin_family = AF_INET;
    tcp_addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &tcp_addr.sin_addr) != 1) {
      ::close(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
      throw IoError("foresightd: bad tcp_host '" + options_.tcp_host +
                    "' (numeric IPv4 required)");
    }
    if (::bind(tcp_listen_fd_, reinterpret_cast<const sockaddr*>(&tcp_addr),
               sizeof(tcp_addr)) != 0 ||
        ::listen(tcp_listen_fd_, 128) != 0) {
      const std::string why = std::strerror(errno);
      ::close(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
      throw IoError("foresightd: cannot listen on tcp:" + options_.tcp_host + ":" +
                    std::to_string(options_.tcp_port) + ": " + why);
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      tcp_port_bound_ = static_cast<int>(ntohs(bound.sin_port));
    }
    ::fcntl(tcp_listen_fd_, F_SETFL, O_NONBLOCK);
  }

  started_ = true;
  live_workers_.store(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
  io_thread_ = std::thread([this] { io_loop(); });
}

void Daemon::wait() {
  require(started_, "foresightd: wait() before start()");
  if (finished_) return;
  io_thread_.join();
  for (auto& w : workers_) w.join();
  watchdog_.join();
  ::unlink(options_.socket_path.c_str());
  if (!options_.metrics_out.empty()) {
    std::ofstream out(options_.metrics_out, std::ios::trunc);
    if (out.good()) out << telemetry::MetricsRegistry::instance().to_json();
  }
  finished_ = true;
}

void Daemon::request_shutdown() {
  if (wake_fds_[1] < 0) return;
  const char byte = 's';
  // EAGAIN just means a wake-up is already pending; any write result is fine.
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], &byte, 1);
}

Daemon::Stats Daemon::stats() const {
  Stats s;
  s.admitted = admitted_.load();
  s.rejected = rejected_.load();
  s.ok = ok_.load();
  s.failed = failed_.load();
  s.cancelled = cancelled_.load();
  s.deadline = deadline_.load();
  s.protocol_errors = protocol_errors_.load();
  s.queue_high_water = queue_.high_water();
  s.transfers_completed = transfers_completed_.load();
  s.transfers_reaped = transfers_reaped_.load();
  s.transfer_reserved_bytes = transfer_reserved_.load();
  s.dataset_cache = dataset_cache_.stats();
  return s;
}

// ---------------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------------

bool Daemon::send_json(Conn& conn, const json::Value& v) {
  if (!conn.open.load(std::memory_order_relaxed)) return false;
  const std::vector<std::uint8_t> frame = encode_frame(v);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(conn.fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Peer gone or send-timeout expired: the connection is dead. Drop the
      // response — the contract is one *attempted* answer per request.
      conn.open.store(false, std::memory_order_relaxed);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Daemon::io_loop() {
  std::map<int, std::shared_ptr<Conn>> conns;
  std::uint64_t next_client = 1;
  bool accepting = true;
  std::vector<std::uint8_t> buf(64 * 1024);
  Timer reap_timer;
  telemetry::Counter& accepted_metric = counter("connections");

  // Both listeners feed the same accept path; a connection's transport is
  // invisible past this point.
  const auto accept_from = [&](int listen_fd, bool tcp) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) break;
      set_timeout(fd, SO_SNDTIMEO, kSendTimeoutSeconds);
      if (tcp) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      auto conn = std::make_shared<Conn>(options_.transfer_limits, &transfer_reserved_);
      conn->fd = fd;
      conn->id = next_client++;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conn_registry_.push_back(conn);
      }
      conns.emplace(fd, std::move(conn));
      accepted_metric.add();
    }
  };
  const auto close_listeners = [&] {
    accepting = false;
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (tcp_listen_fd_ >= 0) {
      ::close(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
    }
  };

  for (;;) {
    const bool had_listen = accepting;
    const bool had_tcp = accepting && tcp_listen_fd_ >= 0;
    std::vector<pollfd> fds;
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (had_listen) fds.push_back({listen_fd_, POLLIN, 0});
    if (had_tcp) fds.push_back({tcp_listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns) fds.push_back({fd, POLLIN, 0});

    // The timeout makes drain completion (workers_done_) observable even
    // with no socket activity.
    if (::poll(fds.data(), fds.size(), 50) < 0 && errno != EINTR) {
      // poll itself failing is unrecoverable for the IO thread; make sure
      // the workers still drain so wait() terminates.
      if (accepting) close_listeners();
      begin_drain();
      break;
    }

    std::size_t idx = 0;
    if (fds[idx++].revents & POLLIN) {  // wake pipe: drain it, start draining
      char sink[64];
      while (::read(wake_fds_[0], sink, sizeof(sink)) > 0) {
      }
      if (accepting) {
        close_listeners();
        begin_drain();
      }
    }
    if (had_listen) {
      if (accepting && (fds[idx].revents & POLLIN)) accept_from(listen_fd_, false);
      ++idx;
    }
    if (had_tcp) {
      if (accepting && (fds[idx].revents & POLLIN)) accept_from(tcp_listen_fd_, true);
      ++idx;
    }

    std::vector<int> dead;
    for (; idx < fds.size(); ++idx) {
      if ((fds[idx].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const auto it = conns.find(fds[idx].fd);
      if (it == conns.end()) continue;
      const std::shared_ptr<Conn>& conn = it->second;
      const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        conn->open.store(false, std::memory_order_relaxed);
        dead.push_back(fds[idx].fd);
        continue;
      }
      try {
        conn->last_input_ns.store(Conn::monotonic_ns(), std::memory_order_relaxed);
        conn->parser.feed(buf.data(), static_cast<std::size_t>(n));
        while (auto frame = conn->parser.next()) handle_frame(conn, *frame);
      } catch (const Error& e) {
        // Framing is lost (bad length or bad JSON): answer once, hang up.
        protocol_errors_.fetch_add(1);
        counter("protocol_errors").add();
        send_json(*conn, make_error(e.what()));
        conn->open.store(false, std::memory_order_relaxed);
        dead.push_back(fds[idx].fd);
      }
    }
    for (const int fd : dead) conns.erase(fd);

    // Reap abandoned transfers from the IO thread: it is the only frame
    // processor, so a reap can never land mid-parse of a chunk, and
    // between-iteration quiet time is real socket silence (not the
    // seconds a multi-megabyte frame spends being decoded).
    if (reap_timer.seconds() > 0.25) {
      reap_transfers();
      reap_timer.reset();
    }

    if (!accepting) {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (workers_done_) break;
    }
  }
  conns.clear();  // destructors close the fds workers are no longer using
}

void Daemon::handle_chunk(const std::shared_ptr<Conn>& conn, const json::Value& frame) {
  if (queue_.draining()) {
    // New transfer traffic is refused during drain; transfers referenced
    // by already-admitted jobs stay claimable (the table is untouched).
    TransferTable::Ack ack;
    ack.transfer = frame.get("transfer", std::string("?"));
    ack.ok = false;
    ack.reason = "draining";
    counter("rejected.draining").add();
    send_json(*conn, make_chunk_ack(ack));
    return;
  }
  const ChunkMessage m = ChunkMessage::parse(frame);  // FormatError → caller
  const TransferTable::Ack ack = conn->transfers.apply(m);
  if (ack.completed) {
    transfers_completed_.fetch_add(1);
    counter("transfers_completed").add();
  }
  if (!ack.ok && ack.send) counter("transfers_failed").add();
  telemetry::MetricsRegistry::instance()
      .gauge("foresightd.transfer_reserved_bytes")
      .set(transfer_reserved_.load());
  if (ack.send) send_json(*conn, make_chunk_ack(ack));
}

void Daemon::handle_frame(const std::shared_ptr<Conn>& conn, const json::Value& frame) {
  if (ChunkMessage::is_chunk(frame)) {
    try {
      handle_chunk(conn, frame);
    } catch (const Error& e) {
      // The chunk message itself was malformed (bad base64, bad fields).
      // Framing survived, so answer and keep the connection.
      counter("bad_requests").add();
      send_json(*conn, make_error(e.what()));
    }
    return;
  }

  JobRequest request;
  try {
    request = JobRequest::parse(frame);
  } catch (const Error& e) {
    // Framing survived; only this request is bad. Answer and keep the
    // connection.
    counter("bad_requests").add();
    send_json(*conn, make_error(e.what()));
    return;
  }

  if (request.proto_major != 0 && !proto_major_supported(request.proto_major)) {
    counter("unsupported_version").add();
    send_json(*conn,
              make_version_error(request.id, request.proto_major, request.proto_minor));
    return;
  }

  if (is_job_request(request.type)) {
    admit_job(conn, std::move(request));
    return;
  }

  json::Object reply;
  if (request.id != 0) reply["id"] = static_cast<double>(request.id);
  switch (request.type) {
    case RequestType::kPing:
      reply["type"] = "pong";
      reply["proto"] = proto_version_string();
      reply["draining"] = queue_.draining();
      break;
    case RequestType::kHello:
      reply["type"] = "hello";
      reply["proto"] = proto_version_string();
      reply["max_frame_bytes"] = static_cast<double>(kMaxFrameBytes);
      reply["chunk_bytes"] = static_cast<double>(options_.stream_chunk_bytes);
      reply["max_transfer_bytes"] =
          static_cast<double>(options_.transfer_limits.max_transfer_bytes);
      reply["transfer_budget_bytes"] =
          static_cast<double>(options_.transfer_limits.budget_bytes);
      {
        json::Array transports;
        transports.push_back(json::Value(std::string("unix")));
        if (tcp_port_bound_ >= 0) transports.push_back(json::Value(std::string("tcp")));
        reply["transports"] = std::move(transports);
      }
      reply["draining"] = queue_.draining();
      break;
    case RequestType::kMetrics:
      reply["type"] = "metrics";
      reply["metrics"] = json::parse(telemetry::MetricsRegistry::instance().to_json());
      break;
    case RequestType::kShutdown:
      reply["type"] = "ok";
      request_shutdown();
      break;
    default:
      reply = make_error("unhandled control request").as_object();
      break;
  }
  send_json(*conn, json::Value(std::move(reply)));
}

void Daemon::admit_job(const std::shared_ptr<Conn>& conn, JobRequest request) {
  const std::uint64_t request_id = request.id;
  const int priority = request.priority;

  // Transfer-backed inputs must be fully reassembled before admission: a
  // job never waits in the queue for bytes that may not arrive. The peek
  // leaves the transfer in place — the worker claims the bytes when it
  // actually executes, so a queue_full rejection costs nothing re-uploadable.
  const auto reject = [&](const char* reason) {
    rejected_.fetch_add(1);
    counter(std::string("rejected.") + reason).add();
    send_json(*conn, make_rejection(request_id, reason));
  };
  std::string transfer_ref = request.payload_transfer;
  std::uint64_t expected_bytes = 0;
  if (request.type != RequestType::kDecompress && request.dataset.is_object() &&
      request.dataset.get("type", std::string()) == "inline") {
    transfer_ref = request.dataset.get("transfer", std::string());
    try {
      require_format(!transfer_ref.empty() && transfer_ref.size() <= kMaxTransferIdChars,
                     "protocol: inline dataset missing transfer id");
      expected_bytes = inline_dims(request.dataset).count() * sizeof(float);
    } catch (const Error& e) {
      counter("bad_requests").add();
      send_json(*conn, make_error(e.what()));
      return;
    }
  }
  if (!transfer_ref.empty()) {
    const auto size = conn->transfers.complete_size(transfer_ref);
    if (!size) {
      reject(conn->transfers.contains(transfer_ref) ? "transfer_incomplete"
                                                    : "transfer_missing");
      return;
    }
    if (expected_bytes != 0 && *size != expected_bytes) {
      reject("transfer_size_mismatch");
      return;
    }
  }

  Job job;
  job.request = std::move(request);
  job.conn = conn;
  job.client = conn->id;
  job.seq = next_job_seq_++;
  const double deadline = job.request.deadline_seconds > 0
                              ? job.request.deadline_seconds
                              : options_.default_deadline_seconds;
  job.token = deadline > 0 ? CancelToken::with_deadline(deadline) : CancelToken();
  job.queued.reset();

  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.emplace(job.seq, job.token);
  }
  const std::uint64_t seq = job.seq;
  const Admission admission = queue_.try_push(std::move(job), conn->id, priority);
  if (admission == Admission::kAccepted) {
    admitted_.fetch_add(1);
    counter("admitted").add();
    telemetry::MetricsRegistry::instance()
        .gauge("foresightd.queue_depth")
        .set(static_cast<std::int64_t>(queue_.size()));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(seq);
  }
  rejected_.fetch_add(1);
  counter(std::string("rejected.") + admission_name(admission)).add();
  send_json(*conn, make_rejection(request_id, admission_name(admission)));
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

void Daemon::begin_drain() {
  queue_.close();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    drain_started_ = true;
  }
  done_cv_.notify_all();
}

void Daemon::cancel_inflight() {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  for (auto& [seq, token] : inflight_) token.cancel();
}

void Daemon::reap_transfers() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::size_t reaped = 0;
  const std::int64_t idle_ns =
      static_cast<std::int64_t>(options_.transfer_idle_seconds * 1e9);
  auto it = conn_registry_.begin();
  while (it != conn_registry_.end()) {
    if (const std::shared_ptr<Conn> conn = it->lock()) {
      // Only connections with no recent input can hold abandoned
      // transfers; anything still sending is mid-chunk, not idle.
      const std::int64_t quiet =
          Conn::monotonic_ns() - conn->last_input_ns.load(std::memory_order_relaxed);
      if (quiet > idle_ns) {
        reaped += conn->transfers.reap_idle(options_.transfer_idle_seconds);
      }
      ++it;
    } else {
      it = conn_registry_.erase(it);  // connection gone; its table died with it
    }
  }
  if (reaped > 0) {
    transfers_reaped_.fetch_add(reaped);
    counter("transfers_reaped").add(reaped);
  }
  telemetry::MetricsRegistry::instance()
      .gauge("foresightd.transfer_reserved_bytes")
      .set(transfer_reserved_.load());
}

void Daemon::watchdog_loop() {
  std::unique_lock<std::mutex> lock(state_mu_);
  done_cv_.wait(lock, [&] { return drain_started_ || workers_done_; });
  if (workers_done_) return;
  const auto budget = std::chrono::duration<double>(options_.drain_budget_seconds);
  if (!done_cv_.wait_for(lock, budget, [&] { return workers_done_; })) {
    // Budget spent: cooperative cancellation. Each still-running job
    // observes its token at the next stage boundary and reports
    // "cancelled"; still-queued jobs are popped, fail their first check,
    // and report "cancelled" too — one status each, always.
    lock.unlock();
    counter("drain_budget_expired").add();
    cancel_inflight();
    lock.lock();
    done_cv_.wait(lock, [&] { return workers_done_; });
  }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void Daemon::worker_loop(std::size_t index) {
  // Per-worker simulator + session cache: sessions are not thread-safe, so
  // worker isolation is structural. Distinct seeds decorrelate the modeled
  // timing jitter; compressed streams are seed-independent.
  gpu::GpuSimulator sim(gpu::find_device(options_.gpu), 1234 + index);
  foresight::SessionCache cache(&sim);

  Job job;
  while (queue_.pop(job)) {
    execute_job(job, cache);
    job = Job{};  // release the conn/token refs before blocking in pop()
  }
  if (live_workers_.fetch_sub(1) == 1) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      workers_done_ = true;
    }
    done_cv_.notify_all();
  }
}

void Daemon::execute_job(Job& job, foresight::SessionCache& cache) {
  auto& registry = telemetry::MetricsRegistry::instance();
  const double wait_seconds = job.queued.seconds();
  registry.histogram("foresightd.queue_wait_seconds").observe_seconds(wait_seconds);
  registry.gauge("foresightd.queue_depth").set(static_cast<std::int64_t>(queue_.size()));

  json::Object reply;
  reply["type"] = "result";
  if (job.request.id != 0) reply["id"] = static_cast<double>(job.request.id);
  reply["job"] = request_type_name(job.request.type);
  reply["queue_wait_seconds"] = wait_seconds;

  const char* status = kStatusOk;
  std::string error;
  try {
    TRACE_SPAN("foresightd.job");
    job.token.check("admission");
    run_job(job, cache, reply);
    job.token.check("respond");
  } catch (const CancelledError& e) {
    status = kStatusCancelled;
    error = e.what();
  } catch (const DeadlineExceededError& e) {
    status = kStatusDeadline;
    error = e.what();
  } catch (const Error& e) {
    status = kStatusFailed;
    error = e.what();
  }
  if (status != kStatusOk) {
    // Containment: whatever state the aborted job left in this worker's
    // sessions/arena dies here, not in the next job.
    cache.invalidate();
  }

  reply["status"] = status;
  if (!error.empty()) reply["error"] = error;

  if (status == kStatusOk) {
    ok_.fetch_add(1);
  } else if (status == kStatusCancelled) {
    cancelled_.fetch_add(1);
  } else if (status == kStatusDeadline) {
    deadline_.fetch_add(1);
  } else {
    failed_.fetch_add(1);
  }
  counter(std::string("status.") + status).add();

  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(job.seq);
  }
  queue_.release(job.client);
  send_json(*job.conn, json::Value(std::move(reply)));
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

std::shared_ptr<const io::Container> Daemon::dataset_for(const json::Value& spec) {
  return dataset_cache_.get_or_build(spec.dump(), [&spec] {
    return std::make_shared<const io::Container>(foresight::build_dataset(spec));
  });
}

namespace {

std::uint32_t bytes_crc(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

std::uint32_t values_crc(const std::vector<float>& values) {
  return crc32(reinterpret_cast<const std::uint8_t*>(values.data()),
               values.size() * sizeof(float));
}

/// One compress → (fault hook) → decompress → distortion pass shared by
/// roundtrip jobs and each sweep lattice point. Mirrors CBench::run_session,
/// plus stage-boundary cancellation checks. The reported crc32/size describe
/// the *clean* stream (pre-corruption), which is what single-shot
/// byte-identity comparisons want.
json::Object run_roundtrip(const Field& field, foresight::CodecSession& session,
                           const foresight::CompressorConfig& config,
                           const CancelToken& token) {
  token.check("compress");
  foresight::CompressResult c = session.compress(field, config);
  json::Object row;
  row["compressed_bytes"] = c.bytes.size();
  row["original_bytes"] = field.bytes();
  row["ratio"] = analysis::compression_ratio(field.bytes(), c.bytes.size());
  row["crc32"] = static_cast<double>(bytes_crc(c.bytes));
  row["compress_seconds"] = c.seconds();

  token.check("corrupt");
  bool corrupted = false;
  if (auto* plan = fault::active()) corrupted = plan->corrupt(c.bytes);
  row["corrupted"] = corrupted;

  token.check("decompress");
  foresight::DecompressResult d = session.decompress(c);
  row["decompress_seconds"] = d.seconds();

  token.check("analyze");
  const analysis::Distortion dist = analysis::compare(field.view(), d.values);
  row["psnr_db"] = dist.psnr_db;
  row["max_abs_err"] = dist.max_abs_err;
  row["nrmse"] = dist.nrmse;
  return row;
}

}  // namespace

void Daemon::stream_payload(Job& job, const std::vector<std::uint8_t>& bytes,
                            json::Object& reply) {
  const std::string id = "srv-" + std::to_string(job.seq);
  const std::size_t chunk_bytes =
      options_.stream_chunk_bytes >= 1 ? options_.stream_chunk_bytes : kDefaultChunkBytes;

  ChunkMessage begin;
  begin.type = ChunkType::kBegin;
  begin.transfer = id;
  begin.total_bytes = bytes.size();
  bool alive = send_json(*job.conn, begin.to_json());
  for (std::size_t offset = 0, seq = 0; alive && offset < bytes.size();
       offset += chunk_bytes, ++seq) {
    const std::size_t len = std::min(chunk_bytes, bytes.size() - offset);
    ChunkMessage chunk;
    chunk.type = ChunkType::kData;
    chunk.transfer = id;
    chunk.seq = seq;
    chunk.crc32 = crc32(bytes.data() + offset, len);
    chunk.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                         bytes.begin() + static_cast<std::ptrdiff_t>(offset + len));
    alive = send_json(*job.conn, chunk.to_json());
  }
  if (alive) {
    ChunkMessage end;
    end.type = ChunkType::kEnd;
    end.transfer = id;
    end.crc32 = bytes_crc(bytes);
    end.has_crc32 = true;
    send_json(*job.conn, end.to_json());
  }
  // A send failure marked the conn closed; the result frame below will be
  // dropped the same way, preserving one *attempted* answer per request.
  reply["payload_transfer"] = id;
  reply["payload_crc32"] = static_cast<double>(bytes_crc(bytes));
  counter("responses_streamed").add();
}

void Daemon::run_job(Job& job, foresight::SessionCache& cache, json::Object& reply) {
  const JobRequest& r = job.request;
  foresight::Compressor& compressor = cache.compressor(r.codec);
  std::unique_lock<std::mutex> serial;
  if (!compressor.concurrent_sessions_safe()) {
    serial = std::unique_lock<std::mutex>(serial_mu_);
  }

  // Transfer-backed inputs were verified complete at admission; the bytes
  // can still be gone here if the watchdog reaped them while the job sat
  // in the queue — that is a plain job failure ("failed"), never a hang.
  const auto claim = [&](const std::string& id) {
    std::vector<std::uint8_t> bytes;
    if (job.conn->transfers.claim(id, bytes) != TransferTable::ClaimStatus::kOk) {
      throw IoError("foresightd: transfer '" + id + "' expired before execution");
    }
    return bytes;
  };

  if (r.type == RequestType::kDecompress) {
    foresight::CompressResult c;
    c.bytes = r.payload_transfer.empty() ? base64_decode(r.payload_b64)
                                         : claim(r.payload_transfer);
    job.token.check("decompress");
    foresight::DecompressResult d = cache.session(r.codec).decompress(c);
    reply["values"] = d.values.size();
    reply["values_crc32"] = static_cast<double>(values_crc(d.values));
    reply["decompress_seconds"] = d.seconds();
    return;
  }

  // Inline datasets are connection-local uploaded bytes: build the Field
  // here (transfers are single-use) and skip the dataset cache.
  Field inline_field;
  std::shared_ptr<const io::Container> dataset;
  const Field* field = nullptr;
  if (r.dataset.get("type", std::string()) == "inline") {
    const Dims dims = inline_dims(r.dataset);
    const std::size_t count = checked_stream_count(dims, "inline dataset");
    const std::vector<std::uint8_t> bytes =
        claim(r.dataset.get("transfer", std::string()));
    require_format(bytes.size() == count * sizeof(float),
                   "foresightd: inline dataset size mismatch");
    std::vector<float> values(count);
    std::memcpy(values.data(), bytes.data(), bytes.size());
    inline_field = Field(r.field, dims, std::move(values));
    field = &inline_field;
  } else {
    dataset = dataset_for(r.dataset);
    field = &dataset->find(r.field).field;
  }

  if (r.type == RequestType::kCompress) {
    job.token.check("compress");
    foresight::CompressResult c =
        cache.session(r.codec).compress(*field, {r.mode, r.value});
    reply["compressed_bytes"] = c.bytes.size();
    reply["original_bytes"] = field->bytes();
    reply["ratio"] = analysis::compression_ratio(field->bytes(), c.bytes.size());
    reply["crc32"] = static_cast<double>(bytes_crc(c.bytes));
    reply["compress_seconds"] = c.seconds();
    if (r.return_bytes) {
      // Base64 expands 3→4; the encoded payload plus JSON overhead must
      // still fit one frame to be inlined.
      const std::size_t encoded = (c.bytes.size() + 2) / 3 * 4;
      const bool fits = encoded + 1024 < kMaxFrameBytes;
      const bool over_threshold = options_.response_stream_threshold > 0 &&
                                  c.bytes.size() > options_.response_stream_threshold;
      if (r.proto_major >= 2 && (!fits || over_threshold)) {
        // v2 clients get oversized payloads as a server→client stream.
        stream_payload(job, c.bytes, reply);
        reply["original_values"] = c.original_values;
      } else if (fits) {
        reply["payload"] = base64_encode(c.bytes);
        reply["original_values"] = c.original_values;
      } else {
        // v1 clients: oversized streams are reported by checksum only.
        reply["payload_omitted"] = true;
      }
    }
    return;
  }

  if (r.type == RequestType::kRoundtrip) {
    json::Object row =
        run_roundtrip(*field, cache.session(r.codec), {r.mode, r.value}, job.token);
    for (auto& [k, v] : row) reply[k] = std::move(v);
    return;
  }

  // Sweep: OnError::kContinue semantics per lattice point — a failing
  // config becomes a failed row, the sweep keeps going; cancellation and
  // deadlines still abort the whole job.
  json::Array rows;
  std::size_t failed_rows = 0;
  for (const auto& [mode, value] : r.configs) {
    job.token.check("sweep");
    json::Object row;
    row["mode"] = mode;
    row["value"] = value;
    try {
      json::Object metrics =
          run_roundtrip(*field, cache.session(r.codec), {mode, value}, job.token);
      for (auto& [k, v] : metrics) row[k] = std::move(v);
      row["row_status"] = kStatusOk;
    } catch (const CancelledError&) {
      throw;
    } catch (const DeadlineExceededError&) {
      throw;
    } catch (const Error& e) {
      row["row_status"] = kStatusFailed;
      row["error"] = std::string(e.what());
      ++failed_rows;
      cache.invalidate();  // the next lattice point starts clean
    }
    rows.push_back(json::Value(std::move(row)));
  }
  reply["rows"] = std::move(rows);
  reply["failed_rows"] = failed_rows;
}

}  // namespace cosmo::foresightd
