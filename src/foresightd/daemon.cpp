#include "foresightd/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "analysis/stats.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "foresight/pipeline.hpp"
#include "foresight/session_cache.hpp"
#include "gpu/sim.hpp"
#include "io/crc32.hpp"

namespace cosmo::foresightd {

namespace {

/// Outbound sends block at most this long before the connection is declared
/// dead; a worker must never hang forever on a client that stopped reading.
constexpr double kSendTimeoutSeconds = 5.0;

constexpr const char* kMetricPrefix = "foresightd.";

void set_timeout(int fd, int option, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

telemetry::Counter& counter(const std::string& suffix) {
  return telemetry::MetricsRegistry::instance().counter(kMetricPrefix + suffix);
}

}  // namespace

/// One accepted connection. The IO thread owns reads; any thread may send a
/// response under write_mu. The fd is closed by the destructor, so a worker
/// holding a shared_ptr past the IO thread's erase can still answer safely
/// (the send fails cleanly instead of racing a reused descriptor).
struct Daemon::Conn {
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  int fd = -1;
  std::uint64_t id = 0;
  FrameParser parser;
  std::mutex write_mu;
  std::atomic<bool> open{true};
};

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      queue_({.capacity = options_.queue_capacity,
              .per_client_quota = options_.per_client_quota,
              .priorities = options_.priorities}) {
  require(!options_.socket_path.empty(), "foresightd: socket_path is required");
  if (options_.workers == 0) options_.workers = 1;
}

Daemon::~Daemon() {
  if (started_ && !finished_) {
    request_shutdown();
    wait();
  }
  for (const int fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void Daemon::start() {
  require(!started_, "foresightd: start() called twice");

  if (options_.faults) {
    fault_plan_ = std::make_unique<fault::FaultPlan>(*options_.faults);
    fault_scope_.emplace(*fault_plan_);
  }

  if (::pipe(wake_fds_) != 0) {
    throw IoError("foresightd: pipe() failed: " + std::string(std::strerror(errno)));
  }
  ::fcntl(wake_fds_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_fds_[1], F_SETFL, O_NONBLOCK);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError("foresightd: socket() failed: " + std::string(std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(options_.socket_path.size() < sizeof(addr.sun_path),
          "foresightd: socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("foresightd: cannot listen on " + options_.socket_path + ": " + why);
  }
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);

  started_ = true;
  live_workers_.store(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
  io_thread_ = std::thread([this] { io_loop(); });
}

void Daemon::wait() {
  require(started_, "foresightd: wait() before start()");
  if (finished_) return;
  io_thread_.join();
  for (auto& w : workers_) w.join();
  watchdog_.join();
  ::unlink(options_.socket_path.c_str());
  if (!options_.metrics_out.empty()) {
    std::ofstream out(options_.metrics_out, std::ios::trunc);
    if (out.good()) out << telemetry::MetricsRegistry::instance().to_json();
  }
  finished_ = true;
}

void Daemon::request_shutdown() {
  if (wake_fds_[1] < 0) return;
  const char byte = 's';
  // EAGAIN just means a wake-up is already pending; any write result is fine.
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], &byte, 1);
}

Daemon::Stats Daemon::stats() const {
  Stats s;
  s.admitted = admitted_.load();
  s.rejected = rejected_.load();
  s.ok = ok_.load();
  s.failed = failed_.load();
  s.cancelled = cancelled_.load();
  s.deadline = deadline_.load();
  s.protocol_errors = protocol_errors_.load();
  s.queue_high_water = queue_.high_water();
  return s;
}

// ---------------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------------

bool Daemon::send_json(Conn& conn, const json::Value& v) {
  if (!conn.open.load(std::memory_order_relaxed)) return false;
  const std::vector<std::uint8_t> frame = encode_frame(v);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(conn.fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Peer gone or send-timeout expired: the connection is dead. Drop the
      // response — the contract is one *attempted* answer per request.
      conn.open.store(false, std::memory_order_relaxed);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Daemon::io_loop() {
  std::map<int, std::shared_ptr<Conn>> conns;
  std::uint64_t next_client = 1;
  bool accepting = true;
  std::vector<std::uint8_t> buf(64 * 1024);
  telemetry::Counter& accepted_metric = counter("connections");

  for (;;) {
    const bool had_listen = accepting;
    std::vector<pollfd> fds;
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (had_listen) fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns) fds.push_back({fd, POLLIN, 0});

    // The timeout makes drain completion (workers_done_) observable even
    // with no socket activity.
    if (::poll(fds.data(), fds.size(), 50) < 0 && errno != EINTR) {
      // poll itself failing is unrecoverable for the IO thread; make sure
      // the workers still drain so wait() terminates.
      if (accepting) {
        accepting = false;
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      begin_drain();
      break;
    }

    std::size_t idx = 0;
    if (fds[idx++].revents & POLLIN) {  // wake pipe: drain it, start draining
      char sink[64];
      while (::read(wake_fds_[0], sink, sizeof(sink)) > 0) {
      }
      if (accepting) {
        accepting = false;
        ::close(listen_fd_);
        listen_fd_ = -1;
        begin_drain();
      }
    }
    if (had_listen) {
      if (accepting && (fds[idx].revents & POLLIN)) {
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          set_timeout(fd, SO_SNDTIMEO, kSendTimeoutSeconds);
          auto conn = std::make_shared<Conn>();
          conn->fd = fd;
          conn->id = next_client++;
          conns.emplace(fd, std::move(conn));
          accepted_metric.add();
        }
      }
      ++idx;
    }

    std::vector<int> dead;
    for (; idx < fds.size(); ++idx) {
      if ((fds[idx].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const auto it = conns.find(fds[idx].fd);
      if (it == conns.end()) continue;
      const std::shared_ptr<Conn>& conn = it->second;
      const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        conn->open.store(false, std::memory_order_relaxed);
        dead.push_back(fds[idx].fd);
        continue;
      }
      try {
        conn->parser.feed(buf.data(), static_cast<std::size_t>(n));
        while (auto frame = conn->parser.next()) handle_frame(conn, *frame);
      } catch (const Error& e) {
        // Framing is lost (bad length or bad JSON): answer once, hang up.
        protocol_errors_.fetch_add(1);
        counter("protocol_errors").add();
        send_json(*conn, make_error(e.what()));
        conn->open.store(false, std::memory_order_relaxed);
        dead.push_back(fds[idx].fd);
      }
    }
    for (const int fd : dead) conns.erase(fd);

    if (!accepting) {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (workers_done_) break;
    }
  }
  conns.clear();  // destructors close the fds workers are no longer using
}

void Daemon::handle_frame(const std::shared_ptr<Conn>& conn, const json::Value& frame) {
  JobRequest request;
  try {
    request = JobRequest::parse(frame);
  } catch (const Error& e) {
    // Framing survived; only this request is bad. Answer and keep the
    // connection.
    counter("bad_requests").add();
    send_json(*conn, make_error(e.what()));
    return;
  }

  if (is_job_request(request.type)) {
    admit_job(conn, std::move(request));
    return;
  }

  json::Object reply;
  if (request.id != 0) reply["id"] = static_cast<double>(request.id);
  switch (request.type) {
    case RequestType::kPing:
      reply["type"] = "pong";
      reply["draining"] = queue_.draining();
      break;
    case RequestType::kMetrics:
      reply["type"] = "metrics";
      reply["metrics"] = json::parse(telemetry::MetricsRegistry::instance().to_json());
      break;
    case RequestType::kShutdown:
      reply["type"] = "ok";
      request_shutdown();
      break;
    default:
      reply = make_error("unhandled control request").as_object();
      break;
  }
  send_json(*conn, json::Value(std::move(reply)));
}

void Daemon::admit_job(const std::shared_ptr<Conn>& conn, JobRequest request) {
  const std::uint64_t request_id = request.id;
  const int priority = request.priority;

  Job job;
  job.request = std::move(request);
  job.conn = conn;
  job.client = conn->id;
  job.seq = next_job_seq_++;
  const double deadline = job.request.deadline_seconds > 0
                              ? job.request.deadline_seconds
                              : options_.default_deadline_seconds;
  job.token = deadline > 0 ? CancelToken::with_deadline(deadline) : CancelToken();
  job.queued.reset();

  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.emplace(job.seq, job.token);
  }
  const std::uint64_t seq = job.seq;
  const Admission admission = queue_.try_push(std::move(job), conn->id, priority);
  if (admission == Admission::kAccepted) {
    admitted_.fetch_add(1);
    counter("admitted").add();
    telemetry::MetricsRegistry::instance()
        .gauge("foresightd.queue_depth")
        .set(static_cast<std::int64_t>(queue_.size()));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(seq);
  }
  rejected_.fetch_add(1);
  counter(std::string("rejected.") + admission_name(admission)).add();
  send_json(*conn, make_rejection(request_id, admission_name(admission)));
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

void Daemon::begin_drain() {
  queue_.close();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    drain_started_ = true;
  }
  done_cv_.notify_all();
}

void Daemon::cancel_inflight() {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  for (auto& [seq, token] : inflight_) token.cancel();
}

void Daemon::watchdog_loop() {
  std::unique_lock<std::mutex> lock(state_mu_);
  done_cv_.wait(lock, [&] { return drain_started_ || workers_done_; });
  if (workers_done_) return;
  const auto budget = std::chrono::duration<double>(options_.drain_budget_seconds);
  if (!done_cv_.wait_for(lock, budget, [&] { return workers_done_; })) {
    // Budget spent: cooperative cancellation. Each still-running job
    // observes its token at the next stage boundary and reports
    // "cancelled"; still-queued jobs are popped, fail their first check,
    // and report "cancelled" too — one status each, always.
    lock.unlock();
    counter("drain_budget_expired").add();
    cancel_inflight();
    lock.lock();
    done_cv_.wait(lock, [&] { return workers_done_; });
  }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void Daemon::worker_loop(std::size_t index) {
  // Per-worker simulator + session cache: sessions are not thread-safe, so
  // worker isolation is structural. Distinct seeds decorrelate the modeled
  // timing jitter; compressed streams are seed-independent.
  gpu::GpuSimulator sim(gpu::find_device(options_.gpu), 1234 + index);
  foresight::SessionCache cache(&sim);

  Job job;
  while (queue_.pop(job)) {
    execute_job(job, cache);
    job = Job{};  // release the conn/token refs before blocking in pop()
  }
  if (live_workers_.fetch_sub(1) == 1) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      workers_done_ = true;
    }
    done_cv_.notify_all();
  }
}

void Daemon::execute_job(Job& job, foresight::SessionCache& cache) {
  auto& registry = telemetry::MetricsRegistry::instance();
  const double wait_seconds = job.queued.seconds();
  registry.histogram("foresightd.queue_wait_seconds").observe_seconds(wait_seconds);
  registry.gauge("foresightd.queue_depth").set(static_cast<std::int64_t>(queue_.size()));

  json::Object reply;
  reply["type"] = "result";
  if (job.request.id != 0) reply["id"] = static_cast<double>(job.request.id);
  reply["job"] = request_type_name(job.request.type);
  reply["queue_wait_seconds"] = wait_seconds;

  const char* status = kStatusOk;
  std::string error;
  try {
    TRACE_SPAN("foresightd.job");
    job.token.check("admission");
    run_job(job, cache, reply);
    job.token.check("respond");
  } catch (const CancelledError& e) {
    status = kStatusCancelled;
    error = e.what();
  } catch (const DeadlineExceededError& e) {
    status = kStatusDeadline;
    error = e.what();
  } catch (const Error& e) {
    status = kStatusFailed;
    error = e.what();
  }
  if (status != kStatusOk) {
    // Containment: whatever state the aborted job left in this worker's
    // sessions/arena dies here, not in the next job.
    cache.invalidate();
  }

  reply["status"] = status;
  if (!error.empty()) reply["error"] = error;

  if (status == kStatusOk) {
    ok_.fetch_add(1);
  } else if (status == kStatusCancelled) {
    cancelled_.fetch_add(1);
  } else if (status == kStatusDeadline) {
    deadline_.fetch_add(1);
  } else {
    failed_.fetch_add(1);
  }
  counter(std::string("status.") + status).add();

  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(job.seq);
  }
  queue_.release(job.client);
  send_json(*job.conn, json::Value(std::move(reply)));
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

std::shared_ptr<const io::Container> Daemon::dataset_for(const json::Value& spec) {
  const std::string key = spec.dump();
  {
    std::lock_guard<std::mutex> lock(datasets_mu_);
    const auto it = datasets_.find(key);
    if (it != datasets_.end()) return it->second;
  }
  // Built outside the lock (generation can be slow); a racing duplicate
  // build is wasted work, not a correctness problem.
  auto built = std::make_shared<const io::Container>(foresight::build_dataset(spec));
  std::lock_guard<std::mutex> lock(datasets_mu_);
  if (datasets_.size() >= 8) datasets_.clear();  // crude bound, datasets are big
  return datasets_.emplace(key, std::move(built)).first->second;
}

namespace {

std::uint32_t bytes_crc(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

std::uint32_t values_crc(const std::vector<float>& values) {
  return crc32(reinterpret_cast<const std::uint8_t*>(values.data()),
               values.size() * sizeof(float));
}

/// One compress → (fault hook) → decompress → distortion pass shared by
/// roundtrip jobs and each sweep lattice point. Mirrors CBench::run_session,
/// plus stage-boundary cancellation checks. The reported crc32/size describe
/// the *clean* stream (pre-corruption), which is what single-shot
/// byte-identity comparisons want.
json::Object run_roundtrip(const Field& field, foresight::CodecSession& session,
                           const foresight::CompressorConfig& config,
                           const CancelToken& token) {
  token.check("compress");
  foresight::CompressResult c = session.compress(field, config);
  json::Object row;
  row["compressed_bytes"] = c.bytes.size();
  row["original_bytes"] = field.bytes();
  row["ratio"] = analysis::compression_ratio(field.bytes(), c.bytes.size());
  row["crc32"] = static_cast<double>(bytes_crc(c.bytes));
  row["compress_seconds"] = c.seconds();

  token.check("corrupt");
  bool corrupted = false;
  if (auto* plan = fault::active()) corrupted = plan->corrupt(c.bytes);
  row["corrupted"] = corrupted;

  token.check("decompress");
  foresight::DecompressResult d = session.decompress(c);
  row["decompress_seconds"] = d.seconds();

  token.check("analyze");
  const analysis::Distortion dist = analysis::compare(field.view(), d.values);
  row["psnr_db"] = dist.psnr_db;
  row["max_abs_err"] = dist.max_abs_err;
  row["nrmse"] = dist.nrmse;
  return row;
}

}  // namespace

void Daemon::run_job(Job& job, foresight::SessionCache& cache, json::Object& reply) {
  const JobRequest& r = job.request;
  foresight::Compressor& compressor = cache.compressor(r.codec);
  std::unique_lock<std::mutex> serial;
  if (!compressor.concurrent_sessions_safe()) {
    serial = std::unique_lock<std::mutex>(serial_mu_);
  }

  if (r.type == RequestType::kDecompress) {
    foresight::CompressResult c;
    c.bytes = base64_decode(r.payload_b64);
    job.token.check("decompress");
    foresight::DecompressResult d = cache.session(r.codec).decompress(c);
    reply["values"] = d.values.size();
    reply["values_crc32"] = static_cast<double>(values_crc(d.values));
    reply["decompress_seconds"] = d.seconds();
    return;
  }

  const std::shared_ptr<const io::Container> dataset = dataset_for(r.dataset);
  const Field& field = dataset->find(r.field).field;

  if (r.type == RequestType::kCompress) {
    job.token.check("compress");
    foresight::CompressResult c =
        cache.session(r.codec).compress(field, {r.mode, r.value});
    reply["compressed_bytes"] = c.bytes.size();
    reply["original_bytes"] = field.bytes();
    reply["ratio"] = analysis::compression_ratio(field.bytes(), c.bytes.size());
    reply["crc32"] = static_cast<double>(bytes_crc(c.bytes));
    reply["compress_seconds"] = c.seconds();
    if (r.return_bytes) {
      std::string payload = base64_encode(c.bytes);
      // The response must still fit one frame; oversized streams are
      // reported by checksum only.
      if (payload.size() + 1024 < kMaxFrameBytes) {
        reply["payload"] = std::move(payload);
        reply["original_values"] = c.original_values;
      } else {
        reply["payload_omitted"] = true;
      }
    }
    return;
  }

  if (r.type == RequestType::kRoundtrip) {
    json::Object row =
        run_roundtrip(field, cache.session(r.codec), {r.mode, r.value}, job.token);
    for (auto& [k, v] : row) reply[k] = std::move(v);
    return;
  }

  // Sweep: OnError::kContinue semantics per lattice point — a failing
  // config becomes a failed row, the sweep keeps going; cancellation and
  // deadlines still abort the whole job.
  json::Array rows;
  std::size_t failed_rows = 0;
  for (const auto& [mode, value] : r.configs) {
    job.token.check("sweep");
    json::Object row;
    row["mode"] = mode;
    row["value"] = value;
    try {
      json::Object metrics =
          run_roundtrip(field, cache.session(r.codec), {mode, value}, job.token);
      for (auto& [k, v] : metrics) row[k] = std::move(v);
      row["row_status"] = kStatusOk;
    } catch (const CancelledError&) {
      throw;
    } catch (const DeadlineExceededError&) {
      throw;
    } catch (const Error& e) {
      row["row_status"] = kStatusFailed;
      row["error"] = std::string(e.what());
      ++failed_rows;
      cache.invalidate();  // the next lattice point starts clean
    }
    rows.push_back(json::Value(std::move(row)));
  }
  reply["rows"] = std::move(rows);
  reply["failed_rows"] = failed_rows;
}

}  // namespace cosmo::foresightd
