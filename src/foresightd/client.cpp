#include "foresightd/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "io/crc32.hpp"

namespace cosmo::foresightd {

namespace {

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError("foresightd client: socket() failed: " +
                  std::string(std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "foresightd client: socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw IoError("foresightd client: cannot connect to " + path + ": " + why);
  }
  return fd;
}

int connect_tcp(const std::string& host_port) {
  const std::size_t colon = host_port.rfind(':');
  require(colon != std::string::npos && colon > 0 && colon + 1 < host_port.size(),
          "foresightd client: tcp endpoint must be tcp:<host>:<port>");
  const std::string host = host_port.substr(0, colon);
  const std::string port = host_port.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    throw IoError("foresightd client: cannot resolve " + host + ": " +
                  std::string(::gai_strerror(rc)));
  }
  int fd = -1;
  std::string why = "no addresses";
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      why = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    why = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw IoError("foresightd client: cannot connect to tcp:" + host_port + ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::Client(const std::string& endpoint) {
  if (endpoint.rfind("tcp:", 0) == 0) {
    fd_ = connect_tcp(endpoint.substr(4));
  } else if (endpoint.rfind("unix:", 0) == 0) {
    fd_ = connect_unix(endpoint.substr(5));
  } else {
    fd_ = connect_unix(endpoint);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send(const json::Value& request) {
  const std::vector<std::uint8_t> frame = encode_frame(request);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw IoError("foresightd client: send failed: " +
                    std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

json::Value Client::next_frame() {
  if (!stash_.empty()) {
    json::Value v = std::move(stash_.front());
    stash_.pop_front();
    return v;
  }
  std::uint8_t buf[64 * 1024];
  for (;;) {
    if (auto frame = parser_.next()) return std::move(*frame);
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw IoError("foresightd client: daemon closed the connection");
    parser_.feed(buf, static_cast<std::size_t>(n));
  }
}

json::Value Client::recv() { return next_frame(); }

json::Value Client::call(const json::Value& request) {
  send(request);
  return recv();
}

void Client::submit(const JobRequest& request) { send(request.to_json()); }

JobReply Client::recv_reply() {
  for (;;) {
    json::Value frame = next_frame();
    if (ChunkMessage::is_chunk(frame)) {
      // A server→client stream in progress: reassemble, keep reading. A
      // stream the table refuses (crc mismatch, over budget) just never
      // completes — the result referencing it reports an empty payload.
      downloads_.apply(ChunkMessage::parse(frame));
      continue;
    }
    JobReply reply = JobReply::parse(std::move(frame));
    if (reply.kind == ReplyKind::kResult && !reply.payload_transfer.empty()) {
      std::vector<std::uint8_t> bytes;
      if (downloads_.claim(reply.payload_transfer, bytes) ==
          TransferTable::ClaimStatus::kOk) {
        reply.payload = std::move(bytes);
      }
    }
    return reply;
  }
}

JobReply Client::call_reply(const JobRequest& request) {
  submit(request);
  return recv_reply();
}

JobReply Client::wait_chunk_ack(const std::string& transfer) {
  for (;;) {
    json::Value frame = next_frame();
    if (ChunkMessage::is_chunk(frame)) {
      downloads_.apply(ChunkMessage::parse(frame));
      continue;
    }
    JobReply reply = JobReply::parse(std::move(frame));
    if (reply.kind == ReplyKind::kChunkAck && reply.transfer == transfer) return reply;
    if (reply.kind == ReplyKind::kError) {
      // The daemon refused a frame outright (malformed chunk, unsupported
      // version). The ack this wait is blocked on may never come — fail
      // the transfer instead of stashing the error and hanging.
      throw FormatError("foresightd client: error during transfer '" + transfer +
                        "': " + reply.error);
    }
    // A pipelined job reply overtook the ack; keep it for recv_reply().
    stash_.push_back(std::move(reply.raw));
  }
}

Client::UploadResult Client::upload(const std::string& id, const std::uint8_t* data,
                                    std::size_t n, std::size_t chunk_bytes) {
  require(chunk_bytes >= 1 && chunk_bytes <= 8u << 20,
          "foresightd client: chunk_bytes out of range");
  require(n >= 1, "foresightd client: cannot upload an empty transfer");
  UploadResult result;

  ChunkMessage begin;
  begin.type = ChunkType::kBegin;
  begin.transfer = id;
  begin.total_bytes = n;
  send(begin.to_json());
  JobReply ack = wait_chunk_ack(id);
  if (!ack.chunk_ok) {
    result.reason = ack.reason.empty() ? "rejected" : ack.reason;
    return result;
  }

  for (std::size_t offset = 0, seq = 0; offset < n; offset += chunk_bytes, ++seq) {
    const std::size_t len = std::min(chunk_bytes, n - offset);
    ChunkMessage chunk;
    chunk.type = ChunkType::kData;
    chunk.transfer = id;
    chunk.seq = seq;
    chunk.crc32 = cosmo::crc32(data + offset, len);
    chunk.payload.assign(data + offset, data + offset + len);
    send(chunk.to_json());
  }

  ChunkMessage end;
  end.type = ChunkType::kEnd;
  end.transfer = id;
  end.crc32 = cosmo::crc32(data, n);
  end.has_crc32 = true;
  send(end.to_json());
  // A mid-stream failure ack (if any) arrives before the end ack and is the
  // first chunk_ack for this id — either way the next ack is the verdict.
  ack = wait_chunk_ack(id);
  result.ok = ack.chunk_ok && ack.chunk_completed;
  if (!result.ok) result.reason = ack.reason.empty() ? "rejected" : ack.reason;
  result.received_bytes = static_cast<std::uint64_t>(ack.raw.get("received_bytes", 0.0));
  result.crc32 = static_cast<std::uint32_t>(ack.raw.get("crc32", 0.0));
  return result;
}

Client::UploadResult Client::upload(const std::string& id,
                                    const std::vector<std::uint8_t>& data,
                                    std::size_t chunk_bytes) {
  return upload(id, data.data(), data.size(), chunk_bytes);
}

HelloReply Client::hello() {
  json::Object o;
  o["type"] = "hello";
  o["proto"] = proto_version_string();
  return HelloReply::parse(call(json::Value(std::move(o))));
}

namespace {
json::Value control(const char* type) {
  json::Object o;
  o["type"] = type;
  return json::Value(std::move(o));
}
}  // namespace

json::Value Client::ping() { return call(control("ping")); }
json::Value Client::metrics() { return call(control("metrics")); }
json::Value Client::shutdown() { return call(control("shutdown")); }

}  // namespace cosmo::foresightd
