#include "foresightd/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace cosmo::foresightd {

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw IoError("foresightd client: socket() failed: " +
                  std::string(std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(socket_path.size() < sizeof(addr.sun_path),
          "foresightd client: socket path too long: " + socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw IoError("foresightd client: cannot connect to " + socket_path + ": " + why);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send(const json::Value& request) {
  const std::vector<std::uint8_t> frame = encode_frame(request);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw IoError("foresightd client: send failed: " +
                    std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

json::Value Client::recv() {
  std::uint8_t buf[16 * 1024];
  for (;;) {
    if (auto frame = parser_.next()) return std::move(*frame);
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw IoError("foresightd client: daemon closed the connection");
    parser_.feed(buf, static_cast<std::size_t>(n));
  }
}

json::Value Client::call(const json::Value& request) {
  send(request);
  return recv();
}

namespace {
json::Value control(const char* type) {
  json::Object o;
  o["type"] = type;
  return json::Value(std::move(o));
}
}  // namespace

json::Value Client::ping() { return call(control("ping")); }
json::Value Client::metrics() { return call(control("metrics")); }
json::Value Client::shutdown() { return call(control("shutdown")); }

}  // namespace cosmo::foresightd
