/// \file protocol.hpp
/// \brief The foresightd wire protocol: length-prefixed JSON frames,
/// chunked transfers, and version negotiation. Full spec: docs/protocol.md.
///
/// Every message — request or response, either direction — is one frame:
///
///   [u32 little-endian payload length][payload: one JSON document]
///
/// The length counts payload bytes only (not the 4-byte prefix) and must be
/// in [1, kMaxFrameBytes]. A declared length outside that range is a
/// protocol error the moment the header is read — the parser never
/// allocates for it, so a hostile 4-GB header costs nothing. Payloads must
/// parse as a single JSON value; framing makes message boundaries explicit
/// so a pipelined client can write N requests back to back and read N
/// responses.
///
/// Payloads larger than one frame (a 512³ field is 512 MiB) ride the
/// chunked-transfer family: `chunk_begin` declares a transfer id and its
/// total size (validated against per-transfer and per-connection budgets
/// before any buffering), `chunk_data` carries up-to-kDefaultChunkBytes
/// slices with per-chunk crc32s, `chunk_end` seals the transfer. Completed
/// transfers are referenced by job requests (`payload_transfer`, inline
/// datasets) and by streamed responses. TransferTable is the reassembly
/// state machine — one per connection, on both sides of the wire.
///
/// FrameParser is incremental (sockets deliver arbitrary splits): feed()
/// whatever arrived, then drain next() until it returns nothing. All
/// malformed input — bad length, bad JSON — throws cosmo::FormatError;
/// after a throw the stream is unrecoverable (framing is lost) and the
/// connection should be closed. This parser, the chunk reassembler, and
/// the request validator are fuzz surfaces (tools/fuzz_smoke), so the
/// containment bar is the codec decoder bar: reject cleanly, never crash
/// or overallocate.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/field.hpp"
#include "common/timer.hpp"
#include "json/json.hpp"

namespace cosmo::foresightd {

/// Hard ceiling on one frame's payload (16 MiB — far above any daemon
/// message; a declared length beyond it is rejected before buffering).
/// Larger payloads ride the chunked-transfer family.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

// ---------------------------------------------------------------------------
// Protocol version
// ---------------------------------------------------------------------------

/// Wire protocol version. Major 1 is the PR 9 protocol (single-frame jobs
/// only); major 2 adds the chunked-transfer family, `hello` negotiation,
/// and transfer-backed job inputs. Requests without a `proto` field are
/// treated as major 1 (a compatible subset), so old clients keep working.
inline constexpr int kProtoMajor = 2;
inline constexpr int kProtoMinor = 0;

/// "2.0" — the daemon's version as sent in hello/pong replies.
[[nodiscard]] std::string proto_version_string();

/// True for every major this daemon can serve (1 and 2).
[[nodiscard]] bool proto_major_supported(int major);

/// Parses "M" or "M.m" into (major, minor); throws FormatError on
/// anything else (empty, non-numeric, negative).
[[nodiscard]] std::pair<int, int> parse_proto(const std::string& text);

/// Serializes \p v as one frame appended to \p out.
void append_frame(std::vector<std::uint8_t>& out, const json::Value& v);

/// One-frame convenience over append_frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const json::Value& v);

/// Incremental frame decoder. Buffers only bytes actually received; the
/// declared length is validated before any payload accumulation.
class FrameParser {
 public:
  /// Appends received bytes. Throws FormatError as soon as a frame header
  /// declares an invalid length (0 or > kMaxFrameBytes).
  void feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete frame's JSON payload, or nullopt when no
  /// complete frame is buffered. Throws FormatError on malformed JSON.
  [[nodiscard]] std::optional<json::Value> next();

  /// Bytes buffered but not yet consumed (partial frame).
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
};

/// Base64 (RFC 4648, with padding) for binary payloads embedded in JSON
/// (decompress-job input streams, returned compressed bytes).
[[nodiscard]] std::string base64_encode(const std::uint8_t* data, std::size_t n);
[[nodiscard]] std::string base64_encode(const std::vector<std::uint8_t>& data);
/// Throws FormatError on any non-base64 input (bad chars, bad padding).
[[nodiscard]] std::vector<std::uint8_t> base64_decode(const std::string& text);

// ---------------------------------------------------------------------------
// Chunked transfers
// ---------------------------------------------------------------------------

/// Default raw bytes per chunk_data frame. Base64 expands this 4/3, which
/// still fits one frame with ample JSON headroom.
inline constexpr std::size_t kDefaultChunkBytes = 4u << 20;

/// Transfer ids are short opaque strings chosen by the sender.
inline constexpr std::size_t kMaxTransferIdChars = 64;

enum class ChunkType { kBegin, kData, kEnd, kAbort };

/// One chunked-transfer message. `chunk_begin` declares id + total size;
/// `chunk_data` carries one in-order slice with its crc32; `chunk_end`
/// seals the transfer (optionally declaring the whole payload's crc32);
/// `chunk_abort` discards it.
struct ChunkMessage {
  ChunkType type = ChunkType::kBegin;
  std::string transfer;            ///< sender-chosen id, 1..64 chars
  std::uint64_t total_bytes = 0;   ///< begin: declared payload size
  std::uint64_t seq = 0;           ///< data: 0-based in-order chunk index
  std::uint32_t crc32 = 0;         ///< data: crc of this chunk; end: whole payload
  bool has_crc32 = false;          ///< end: whether crc32 was declared
  std::vector<std::uint8_t> payload;  ///< data: decoded chunk bytes

  /// True when \p v is an object whose "type" is one of the chunk_* kinds.
  [[nodiscard]] static bool is_chunk(const json::Value& v);
  /// Validates and decodes one chunk message; throws FormatError on any
  /// malformed field (bad id, bad base64, absurd sizes).
  [[nodiscard]] static ChunkMessage parse(const json::Value& v);
  [[nodiscard]] json::Value to_json() const;
};

/// Bounds on one connection's reassembly state. The budget counts
/// *declared* bytes of every open or completed-but-unclaimed transfer, so
/// an over-budget chunk_begin is refused before any buffering.
struct TransferLimits {
  std::uint64_t max_transfer_bytes = 1ull << 30;  ///< per-transfer cap (1 GiB)
  std::uint64_t budget_bytes = 3ull << 29;        ///< per-connection cap (1.5 GiB)
  std::size_t max_transfers = 16;                 ///< concurrent ids per connection
};

/// Per-connection chunk reassembly: the protocol-level state machine both
/// the daemon (uploads) and the client (streamed responses) run. All
/// methods are thread-safe; rejections are returned as reasons, never
/// thrown, so a bad transfer costs its own id and nothing else. A failed
/// id lands in a bounded dead-set whose members are ignored silently —
/// the sender already heard the rejection once, so a half-sent stream
/// cannot generate an ack storm.
class TransferTable {
 public:
  /// Outcome of applying one chunk message. `send` says whether an ack
  /// frame should go back (begin/end/abort always; data only on failure).
  struct Ack {
    std::string transfer;
    bool ok = true;
    bool send = true;
    const char* reason = nullptr;       ///< set when !ok (stable string)
    bool completed = false;             ///< end accepted: transfer is claimable
    std::uint64_t received_bytes = 0;   ///< end: total reassembled size
    std::uint32_t crc32 = 0;            ///< end: crc of the whole payload
  };

  /// \p reserved_gauge (optional) is adjusted by every reserve/release so
  /// an owner can observe aggregate buffered bytes across tables.
  explicit TransferTable(TransferLimits limits,
                         std::atomic<std::int64_t>* reserved_gauge = nullptr);
  ~TransferTable();
  TransferTable(const TransferTable&) = delete;
  TransferTable& operator=(const TransferTable&) = delete;

  /// Advances the state machine by one message.
  Ack apply(const ChunkMessage& m);

  enum class ClaimStatus { kOk, kMissing, kIncomplete };

  /// Moves a completed transfer's bytes out (freeing its budget).
  ClaimStatus claim(const std::string& id, std::vector<std::uint8_t>& out);

  /// Re-inserts bytes as a completed transfer (undo of claim, e.g. when
  /// the job that claimed them was refused admission). No-op when the
  /// bytes no longer fit the budget.
  void deposit(const std::string& id, std::vector<std::uint8_t> bytes);

  /// True when \p id exists (sealed or still receiving).
  [[nodiscard]] bool contains(const std::string& id) const;
  /// True when \p id has been sealed by chunk_end and not yet claimed.
  [[nodiscard]] bool complete(const std::string& id) const;
  /// Size of a completed transfer, or nullopt when absent/incomplete.
  [[nodiscard]] std::optional<std::uint64_t> complete_size(const std::string& id) const;

  /// Declared bytes currently reserved (open + unclaimed transfers).
  [[nodiscard]] std::uint64_t reserved_bytes() const;
  [[nodiscard]] std::size_t open_transfers() const;

  /// Drops transfers with no activity for \p idle_seconds (the watchdog's
  /// reaping pass for abandoned uploads). Returns how many were dropped.
  std::size_t reap_idle(double idle_seconds);

  /// Drops everything (connection teardown / drain).
  void clear();

 private:
  struct Transfer {
    std::uint64_t total = 0;
    std::uint64_t next_seq = 0;
    bool sealed = false;
    std::vector<std::uint8_t> bytes;
    Timer idle;  ///< reset on every accepted chunk
  };

  Ack fail_locked(const std::string& id, const char* reason);
  void release_locked(std::uint64_t n);

  mutable std::mutex mu_;
  TransferLimits limits_;
  std::atomic<std::int64_t>* gauge_;
  std::map<std::string, Transfer> transfers_;
  std::set<std::string> dead_;  ///< recently failed ids, bounded
  std::uint64_t reserved_ = 0;
};

/// Builds the chunk_ack frame for an apply() outcome.
[[nodiscard]] json::Value make_chunk_ack(const TransferTable::Ack& ack);

// ---------------------------------------------------------------------------
// Message schema
// ---------------------------------------------------------------------------

/// Request kinds. Control requests (ping/metrics/shutdown) are answered
/// inline by the IO thread; job requests go through admission and the
/// worker pool.
enum class RequestType {
  kPing,
  kHello,
  kMetrics,
  kShutdown,
  kCompress,
  kDecompress,
  kRoundtrip,
  kSweep,
};

[[nodiscard]] const char* request_type_name(RequestType t);
[[nodiscard]] bool is_job_request(RequestType t);

/// A parsed request. Fields beyond `type` are meaningful for job requests
/// only; parse() validates per-type requirements and throws FormatError on
/// anything malformed (unknown type, missing codec, bad base64 payload
/// size, negative deadline, ...).
struct JobRequest {
  RequestType type = RequestType::kPing;
  std::uint64_t id = 0;        ///< client-chosen correlation id, echoed back
  int proto_major = 0;         ///< 0 = no `proto` field sent (treated as major 1)
  int proto_minor = 0;
  std::string codec;           ///< registry name, e.g. "sz-cpu"
  std::string mode;            ///< config mode (single-config job types)
  double value = 0.0;          ///< config value
  json::Value dataset;         ///< dataset spec: {type, dim/particles, seed}, {type:"file", path}, or {type:"inline", transfer, dims}
  std::string field;           ///< field name within the dataset
  double deadline_seconds = 0; ///< 0 = no per-job deadline (daemon default applies)
  int priority = 1;            ///< 0 = highest
  std::string payload_b64;     ///< compressed input, inline (decompress jobs)
  std::string payload_transfer; ///< compressed input as a completed transfer id
  bool return_bytes = false;   ///< include compressed bytes in the response
  /// Sweep jobs: the (mode, value) lattice to run over `field`.
  std::vector<std::pair<std::string, double>> configs;

  [[nodiscard]] static JobRequest parse(const json::Value& v);
  [[nodiscard]] json::Value to_json() const;
};

/// Dims declared by an `{type:"inline", transfer, dims:[nx,ny,nz]}` dataset
/// spec. Throws FormatError when dims are absent/malformed/overflowing.
[[nodiscard]] Dims inline_dims(const json::Value& dataset_spec);

/// Terminal job statuses. Every admitted job reports exactly one of these;
/// rejected jobs report "rejected" with an admission reason instead.
inline constexpr const char* kStatusOk = "ok";
inline constexpr const char* kStatusFailed = "failed";
inline constexpr const char* kStatusRejected = "rejected";
inline constexpr const char* kStatusCancelled = "cancelled";
inline constexpr const char* kStatusDeadline = "deadline";

/// Builds the rejection response for a request refused at admission.
[[nodiscard]] json::Value make_rejection(std::uint64_t id, const char* reason);

/// Builds an error response for a malformed request (still a valid frame).
[[nodiscard]] json::Value make_error(const std::string& what);

/// Builds the structured `unsupported_version` error sent for a request
/// whose `proto` major this daemon cannot serve. Carries the daemon's own
/// version so the client can downgrade.
[[nodiscard]] json::Value make_version_error(std::uint64_t id, int major, int minor);

}  // namespace cosmo::foresightd
