/// \file protocol.hpp
/// \brief The foresightd wire protocol: length-prefixed JSON frames.
///
/// Every message — request or response, either direction — is one frame:
///
///   [u32 little-endian payload length][payload: one JSON document]
///
/// The length counts payload bytes only (not the 4-byte prefix) and must be
/// in [1, kMaxFrameBytes]. A declared length outside that range is a
/// protocol error the moment the header is read — the parser never
/// allocates for it, so a hostile 4-GB header costs nothing. Payloads must
/// parse as a single JSON value; framing makes message boundaries explicit
/// so a pipelined client can write N requests back to back and read N
/// responses.
///
/// FrameParser is incremental (sockets deliver arbitrary splits): feed()
/// whatever arrived, then drain next() until it returns nothing. All
/// malformed input — bad length, bad JSON — throws cosmo::FormatError;
/// after a throw the stream is unrecoverable (framing is lost) and the
/// connection should be closed. This parser is a fuzz surface
/// (tools/fuzz_smoke), so the containment bar is the codec decoder bar:
/// reject cleanly, never crash or overallocate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace cosmo::foresightd {

/// Hard ceiling on one frame's payload (16 MiB — far above any daemon
/// message; a declared length beyond it is rejected before buffering).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Serializes \p v as one frame appended to \p out.
void append_frame(std::vector<std::uint8_t>& out, const json::Value& v);

/// One-frame convenience over append_frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const json::Value& v);

/// Incremental frame decoder. Buffers only bytes actually received; the
/// declared length is validated before any payload accumulation.
class FrameParser {
 public:
  /// Appends received bytes. Throws FormatError as soon as a frame header
  /// declares an invalid length (0 or > kMaxFrameBytes).
  void feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete frame's JSON payload, or nullopt when no
  /// complete frame is buffered. Throws FormatError on malformed JSON.
  [[nodiscard]] std::optional<json::Value> next();

  /// Bytes buffered but not yet consumed (partial frame).
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
};

/// Base64 (RFC 4648, with padding) for binary payloads embedded in JSON
/// (decompress-job input streams, returned compressed bytes).
[[nodiscard]] std::string base64_encode(const std::uint8_t* data, std::size_t n);
[[nodiscard]] std::string base64_encode(const std::vector<std::uint8_t>& data);
/// Throws FormatError on any non-base64 input (bad chars, bad padding).
[[nodiscard]] std::vector<std::uint8_t> base64_decode(const std::string& text);

// ---------------------------------------------------------------------------
// Message schema
// ---------------------------------------------------------------------------

/// Request kinds. Control requests (ping/metrics/shutdown) are answered
/// inline by the IO thread; job requests go through admission and the
/// worker pool.
enum class RequestType {
  kPing,
  kMetrics,
  kShutdown,
  kCompress,
  kDecompress,
  kRoundtrip,
  kSweep,
};

[[nodiscard]] const char* request_type_name(RequestType t);
[[nodiscard]] bool is_job_request(RequestType t);

/// A parsed request. Fields beyond `type` are meaningful for job requests
/// only; parse() validates per-type requirements and throws FormatError on
/// anything malformed (unknown type, missing codec, bad base64 payload
/// size, negative deadline, ...).
struct JobRequest {
  RequestType type = RequestType::kPing;
  std::uint64_t id = 0;        ///< client-chosen correlation id, echoed back
  std::string codec;           ///< registry name, e.g. "sz-cpu"
  std::string mode;            ///< config mode (single-config job types)
  double value = 0.0;          ///< config value
  json::Value dataset;         ///< dataset spec: {type, dim/particles, seed} or {type:"file", path}
  std::string field;           ///< field name within the dataset
  double deadline_seconds = 0; ///< 0 = no per-job deadline (daemon default applies)
  int priority = 1;            ///< 0 = highest
  std::string payload_b64;     ///< compressed input (decompress jobs)
  bool return_bytes = false;   ///< include compressed bytes in the response
  /// Sweep jobs: the (mode, value) lattice to run over `field`.
  std::vector<std::pair<std::string, double>> configs;

  [[nodiscard]] static JobRequest parse(const json::Value& v);
  [[nodiscard]] json::Value to_json() const;
};

/// Terminal job statuses. Every admitted job reports exactly one of these;
/// rejected jobs report "rejected" with an admission reason instead.
inline constexpr const char* kStatusOk = "ok";
inline constexpr const char* kStatusFailed = "failed";
inline constexpr const char* kStatusRejected = "rejected";
inline constexpr const char* kStatusCancelled = "cancelled";
inline constexpr const char* kStatusDeadline = "deadline";

/// Builds the rejection response for a request refused at admission.
[[nodiscard]] json::Value make_rejection(std::uint64_t id, const char* reason);

/// Builds an error response for a malformed request (still a valid frame).
[[nodiscard]] json::Value make_error(const std::string& what);

}  // namespace cosmo::foresightd
