/// \file client.hpp
/// \brief foresightd client: one blocking connection, AF_UNIX or TCP.
///
/// Endpoints: a plain path (or "unix:<path>") connects over AF_UNIX;
/// "tcp:<host>:<port>" connects over TCP — both speak the identical frame
/// protocol. The client is deliberately thin: it frames requests, decodes
/// response frames, reassembles server→client streams, and nothing else.
///
/// Two surfaces:
///  - Typed (preferred): submit()/call_reply() with the api.hpp request
///    structs, recv_reply() for pipelined correlation-by-id, upload() for
///    payloads past the 16 MiB frame cap, hello() for version negotiation.
///    recv_reply() transparently absorbs server→client chunk frames and
///    attaches the reassembled bytes to the reply that references them.
///  - Raw escape hatch: send()/recv()/call() move unmodified json::Value
///    frames for anything the typed surface does not model.
///
/// Pipelining is allowed (send N, then recv N); responses for job requests
/// may arrive in any order (workers finish when they finish), so pipelined
/// callers must correlate by the "id" they chose. One Client is one
/// connection and is not thread-safe; concurrent clients each open their
/// own.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "foresightd/api.hpp"
#include "foresightd/protocol.hpp"
#include "json/json.hpp"

namespace cosmo::foresightd {

class Client {
 public:
  /// Connects to \p endpoint ("<path>", "unix:<path>", or
  /// "tcp:<host>:<port>"); throws IoError when nothing listens.
  explicit Client(const std::string& endpoint);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- raw escape hatch ----------------------------------------------------

  /// Sends one request frame.
  void send(const json::Value& request);

  /// Blocks for the next response frame. Throws IoError when the daemon
  /// hangs up, FormatError on a corrupt frame.
  [[nodiscard]] json::Value recv();

  /// send() + recv(): correct for strictly request/response usage (no
  /// pipelining in flight).
  [[nodiscard]] json::Value call(const json::Value& request);

  // --- typed surface -------------------------------------------------------

  /// Sends a typed job request (serialized through JobRequest, so it
  /// carries `proto` and passes the daemon's validator by construction).
  void submit(const JobRequest& request);

  /// Blocks for the next *reply* frame, absorbing any server→client chunk
  /// frames into the internal transfer table. When a result references a
  /// streamed payload (`payload_transfer`), the reassembled bytes are
  /// claimed into JobReply::payload; a stream that failed client-side
  /// (crc mismatch) leaves the payload empty with payload_transfer set.
  [[nodiscard]] JobReply recv_reply();

  /// submit() + recv_reply().
  [[nodiscard]] JobReply call_reply(const JobRequest& request);

  /// Outcome of an upload. `ok` means the daemon sealed the transfer and
  /// its crc32 of the reassembled bytes matched ours.
  struct UploadResult {
    bool ok = false;
    std::string reason;            ///< daemon's rejection reason when !ok
    std::uint64_t received_bytes = 0;
    std::uint32_t crc32 = 0;       ///< daemon-computed crc of the whole payload
  };

  /// Streams \p n bytes to the daemon as transfer \p id
  /// (chunk_begin → chunk_data… → chunk_end), waiting for the begin and
  /// end acks. Must not be interleaved with outstanding pipelined job
  /// requests on this connection (their replies would be stashed, not
  /// lost, but the upload blocks until its own acks arrive).
  UploadResult upload(const std::string& id, const std::uint8_t* data, std::size_t n,
                      std::size_t chunk_bytes = kDefaultChunkBytes);
  UploadResult upload(const std::string& id, const std::vector<std::uint8_t>& data,
                      std::size_t chunk_bytes = kDefaultChunkBytes);

  /// Version negotiation. Throws FormatError when the daemon's reply is
  /// not a hello (e.g. a v1 daemon that answers with an error frame).
  [[nodiscard]] HelloReply hello();

  /// Control conveniences.
  [[nodiscard]] json::Value ping();
  [[nodiscard]] json::Value metrics();
  [[nodiscard]] json::Value shutdown();

 private:
  /// Next frame from the stash or the socket (no chunk handling).
  [[nodiscard]] json::Value next_frame();
  /// Blocks until a chunk_ack for \p transfer arrives; other reply frames
  /// are stashed for later recv()/recv_reply() calls.
  [[nodiscard]] JobReply wait_chunk_ack(const std::string& transfer);

  int fd_ = -1;
  FrameParser parser_;
  std::deque<json::Value> stash_;  ///< replies received while waiting for acks
  TransferTable downloads_{TransferLimits{}};
};

}  // namespace cosmo::foresightd
