/// \file client.hpp
/// \brief Minimal foresightd client: one blocking AF_UNIX connection.
///
/// The client is deliberately thin — it frames requests, decodes response
/// frames, and nothing else. Pipelining is allowed (send N, then recv N);
/// responses for job requests may arrive in any order (workers finish when
/// they finish), so pipelined callers must correlate by the "id" they
/// chose. One Client is one connection and is not thread-safe; concurrent
/// clients each open their own.
#pragma once

#include <cstdint>
#include <string>

#include "foresightd/protocol.hpp"
#include "json/json.hpp"

namespace cosmo::foresightd {

class Client {
 public:
  /// Connects to a daemon's socket; throws IoError when nothing listens.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request frame.
  void send(const json::Value& request);

  /// Blocks for the next response frame. Throws IoError when the daemon
  /// hangs up, FormatError on a corrupt frame.
  [[nodiscard]] json::Value recv();

  /// send() + recv(): correct for strictly request/response usage (no
  /// pipelining in flight).
  [[nodiscard]] json::Value call(const json::Value& request);

  /// Control conveniences.
  [[nodiscard]] json::Value ping();
  [[nodiscard]] json::Value metrics();
  [[nodiscard]] json::Value shutdown();

 private:
  int fd_ = -1;
  FrameParser parser_;
};

}  // namespace cosmo::foresightd
