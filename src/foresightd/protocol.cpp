#include "foresightd/protocol.hpp"

#include <cstring>

#include "common/error.hpp"

namespace cosmo::foresightd {

void append_frame(std::vector<std::uint8_t>& out, const json::Value& v) {
  const std::string payload = v.dump();
  require(payload.size() >= 1 && payload.size() <= kMaxFrameBytes,
          "protocol: frame payload out of range");
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_frame(const json::Value& v) {
  std::vector<std::uint8_t> out;
  append_frame(out, v);
  return out;
}

void FrameParser::feed(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // don't grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
  // Validate the declared length as soon as the header is complete — a
  // hostile length fails here, before any payload bytes are buffered for
  // it. (Bytes already received stay bounded by the socket read size.)
  if (buffer_.size() - consumed_ >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, buffer_.data() + consumed_, 4);  // little-endian hosts only
    require_format(len >= 1 && len <= kMaxFrameBytes,
                   "protocol: frame length " + std::to_string(len) +
                       " outside [1, " + std::to_string(kMaxFrameBytes) + "]");
  }
}

std::optional<json::Value> FrameParser::next() {
  if (buffer_.size() - consumed_ < 4) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buffer_.data() + consumed_, 4);
  require_format(len >= 1 && len <= kMaxFrameBytes,
                 "protocol: frame length " + std::to_string(len) + " outside [1, " +
                     std::to_string(kMaxFrameBytes) + "]");
  if (buffer_.size() - consumed_ < 4 + static_cast<std::size_t>(len)) {
    return std::nullopt;
  }
  const char* begin = reinterpret_cast<const char*>(buffer_.data() + consumed_ + 4);
  const std::string payload(begin, begin + len);
  consumed_ += 4 + static_cast<std::size_t>(len);
  return json::parse(payload);  // throws FormatError on malformed JSON
}

// ---------------------------------------------------------------------------
// Base64
// ---------------------------------------------------------------------------

namespace {

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Decode table: 0-63 for alphabet chars, 64 for '=', 255 for invalid.
constexpr std::uint8_t b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return static_cast<std::uint8_t>(c - 'A');
  if (c >= 'a' && c <= 'z') return static_cast<std::uint8_t>(c - 'a' + 26);
  if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0' + 52);
  if (c == '+') return 62;
  if (c == '/') return 63;
  if (c == '=') return 64;
  return 255;
}

}  // namespace

std::string base64_encode(const std::uint8_t* data, std::size_t n) {
  std::string out;
  out.reserve((n + 2) / 3 * 4);
  for (std::size_t i = 0; i < n; i += 3) {
    const std::uint32_t b0 = data[i];
    const std::uint32_t b1 = i + 1 < n ? data[i + 1] : 0;
    const std::uint32_t b2 = i + 2 < n ? data[i + 2] : 0;
    const std::uint32_t triple = (b0 << 16) | (b1 << 8) | b2;
    out.push_back(kB64Alphabet[(triple >> 18) & 0x3F]);
    out.push_back(kB64Alphabet[(triple >> 12) & 0x3F]);
    out.push_back(i + 1 < n ? kB64Alphabet[(triple >> 6) & 0x3F] : '=');
    out.push_back(i + 2 < n ? kB64Alphabet[triple & 0x3F] : '=');
  }
  return out;
}

std::string base64_encode(const std::vector<std::uint8_t>& data) {
  return base64_encode(data.data(), data.size());
}

std::vector<std::uint8_t> base64_decode(const std::string& text) {
  require_format(text.size() % 4 == 0, "base64: length not a multiple of 4");
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    std::uint8_t v[4];
    for (int j = 0; j < 4; ++j) {
      v[j] = b64_value(text[i + j]);
      require_format(v[j] != 255, "base64: invalid character");
    }
    // Padding only in the last two positions of the last quartet.
    const bool last = i + 4 == text.size();
    require_format(v[0] != 64 && v[1] != 64, "base64: misplaced padding");
    require_format(last || (v[2] != 64 && v[3] != 64), "base64: misplaced padding");
    require_format(v[2] != 64 || v[3] == 64, "base64: misplaced padding");
    const std::uint32_t triple = (static_cast<std::uint32_t>(v[0]) << 18) |
                                 (static_cast<std::uint32_t>(v[1]) << 12) |
                                 (static_cast<std::uint32_t>(v[2] & 0x3F) << 6) |
                                 (v[3] & 0x3F);
    out.push_back(static_cast<std::uint8_t>((triple >> 16) & 0xFF));
    if (v[2] != 64) out.push_back(static_cast<std::uint8_t>((triple >> 8) & 0xFF));
    if (v[3] != 64) out.push_back(static_cast<std::uint8_t>(triple & 0xFF));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Message schema
// ---------------------------------------------------------------------------

const char* request_type_name(RequestType t) {
  switch (t) {
    case RequestType::kPing: return "ping";
    case RequestType::kMetrics: return "metrics";
    case RequestType::kShutdown: return "shutdown";
    case RequestType::kCompress: return "compress";
    case RequestType::kDecompress: return "decompress";
    case RequestType::kRoundtrip: return "roundtrip";
    case RequestType::kSweep: return "sweep";
  }
  return "unknown";
}

bool is_job_request(RequestType t) {
  return t == RequestType::kCompress || t == RequestType::kDecompress ||
         t == RequestType::kRoundtrip || t == RequestType::kSweep;
}

namespace {

RequestType parse_type(const std::string& name) {
  for (const RequestType t :
       {RequestType::kPing, RequestType::kMetrics, RequestType::kShutdown,
        RequestType::kCompress, RequestType::kDecompress, RequestType::kRoundtrip,
        RequestType::kSweep}) {
    if (name == request_type_name(t)) return t;
  }
  throw FormatError("protocol: unknown request type '" + name + "'");
}

}  // namespace

JobRequest JobRequest::parse(const json::Value& v) {
  require_format(v.is_object(), "protocol: request must be a JSON object");
  JobRequest r;
  r.type = parse_type(v.get("type", std::string()));
  const double id = v.get("id", 0.0);
  require_format(id >= 0, "protocol: negative request id");
  r.id = static_cast<std::uint64_t>(id);
  if (!is_job_request(r.type)) return r;

  r.deadline_seconds = v.get("deadline_seconds", 0.0);
  require_format(r.deadline_seconds >= 0, "protocol: negative deadline");
  r.priority = static_cast<int>(v.get("priority", 1.0));
  require_format(r.priority >= 0 && r.priority <= 15, "protocol: priority out of range");
  r.codec = v.get("codec", std::string());
  require_format(!r.codec.empty(), "protocol: job request missing codec");
  r.return_bytes = v.get("return_bytes", false);

  if (r.type == RequestType::kDecompress) {
    r.payload_b64 = v.get("payload", std::string());
    require_format(!r.payload_b64.empty(), "protocol: decompress request missing payload");
    require_format(r.payload_b64.size() <= static_cast<std::size_t>(kMaxFrameBytes),
                   "protocol: decompress payload too large");
    return r;
  }

  require_format(v.contains("dataset"), "protocol: job request missing dataset spec");
  r.dataset = v.at("dataset");
  require_format(r.dataset.is_object(), "protocol: dataset spec must be an object");
  r.field = v.get("field", std::string());
  require_format(!r.field.empty(), "protocol: job request missing field");

  if (r.type == RequestType::kSweep) {
    require_format(v.contains("configs"), "protocol: sweep request missing configs");
    for (const auto& c : v.at("configs").as_array()) {
      require_format(c.is_object() && c.contains("mode") && c.contains("value"),
                     "protocol: sweep config needs mode and value");
      r.configs.emplace_back(c.at("mode").as_string(), c.at("value").as_number());
    }
    require_format(!r.configs.empty(), "protocol: sweep request with no configs");
    require_format(r.configs.size() <= 1024, "protocol: sweep config list too large");
  } else {
    r.mode = v.get("mode", std::string());
    require_format(!r.mode.empty(), "protocol: job request missing mode");
    r.value = v.get("value", 0.0);
  }
  return r;
}

json::Value JobRequest::to_json() const {
  json::Object o;
  o["type"] = request_type_name(type);
  if (id != 0) o["id"] = static_cast<double>(id);
  if (!is_job_request(type)) return json::Value(std::move(o));
  o["codec"] = codec;
  if (deadline_seconds > 0) o["deadline_seconds"] = deadline_seconds;
  if (priority != 1) o["priority"] = priority;
  if (return_bytes) o["return_bytes"] = true;
  if (type == RequestType::kDecompress) {
    o["payload"] = payload_b64;
    return json::Value(std::move(o));
  }
  o["dataset"] = dataset;
  o["field"] = field;
  if (type == RequestType::kSweep) {
    json::Array lattice;
    for (const auto& [mode_name, config_value] : configs) {
      json::Object c;
      c["mode"] = mode_name;
      c["value"] = config_value;
      lattice.push_back(json::Value(std::move(c)));
    }
    o["configs"] = std::move(lattice);
  } else {
    o["mode"] = mode;
    o["value"] = value;
  }
  return json::Value(std::move(o));
}

json::Value make_rejection(std::uint64_t id, const char* reason) {
  json::Object o;
  o["type"] = "result";
  if (id != 0) o["id"] = static_cast<double>(id);
  o["status"] = kStatusRejected;
  o["reason"] = reason;
  return json::Value(std::move(o));
}

json::Value make_error(const std::string& what) {
  json::Object o;
  o["type"] = "error";
  o["error"] = what;
  return json::Value(std::move(o));
}

}  // namespace cosmo::foresightd
