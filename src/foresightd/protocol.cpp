#include "foresightd/protocol.hpp"

#include <cctype>
#include <cstring>

#include "common/error.hpp"
#include "io/crc32.hpp"

namespace cosmo::foresightd {

// ---------------------------------------------------------------------------
// Protocol version
// ---------------------------------------------------------------------------

std::string proto_version_string() {
  return std::to_string(kProtoMajor) + "." + std::to_string(kProtoMinor);
}

bool proto_major_supported(int major) { return major == 1 || major == kProtoMajor; }

namespace {

int parse_proto_int(const std::string& text) {
  require_format(!text.empty() && text.size() <= 6, "protocol: bad proto version");
  int value = 0;
  for (const char c : text) {
    require_format(std::isdigit(static_cast<unsigned char>(c)) != 0,
                   "protocol: bad proto version");
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace

std::pair<int, int> parse_proto(const std::string& text) {
  const std::size_t dot = text.find('.');
  if (dot == std::string::npos) return {parse_proto_int(text), 0};
  return {parse_proto_int(text.substr(0, dot)), parse_proto_int(text.substr(dot + 1))};
}

void append_frame(std::vector<std::uint8_t>& out, const json::Value& v) {
  const std::string payload = v.dump();
  require(payload.size() >= 1 && payload.size() <= kMaxFrameBytes,
          "protocol: frame payload out of range");
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_frame(const json::Value& v) {
  std::vector<std::uint8_t> out;
  append_frame(out, v);
  return out;
}

void FrameParser::feed(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // don't grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
  // Validate the declared length as soon as the header is complete — a
  // hostile length fails here, before any payload bytes are buffered for
  // it. (Bytes already received stay bounded by the socket read size.)
  if (buffer_.size() - consumed_ >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, buffer_.data() + consumed_, 4);  // little-endian hosts only
    require_format(len >= 1 && len <= kMaxFrameBytes,
                   "protocol: frame length " + std::to_string(len) +
                       " outside [1, " + std::to_string(kMaxFrameBytes) + "]");
  }
}

std::optional<json::Value> FrameParser::next() {
  if (buffer_.size() - consumed_ < 4) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buffer_.data() + consumed_, 4);
  require_format(len >= 1 && len <= kMaxFrameBytes,
                 "protocol: frame length " + std::to_string(len) + " outside [1, " +
                     std::to_string(kMaxFrameBytes) + "]");
  if (buffer_.size() - consumed_ < 4 + static_cast<std::size_t>(len)) {
    return std::nullopt;
  }
  const char* begin = reinterpret_cast<const char*>(buffer_.data() + consumed_ + 4);
  const std::string payload(begin, begin + len);
  consumed_ += 4 + static_cast<std::size_t>(len);
  return json::parse(payload);  // throws FormatError on malformed JSON
}

// ---------------------------------------------------------------------------
// Base64
// ---------------------------------------------------------------------------

namespace {

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Decode table: 0-63 for alphabet chars, 64 for '=', 255 for invalid.
constexpr std::uint8_t b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return static_cast<std::uint8_t>(c - 'A');
  if (c >= 'a' && c <= 'z') return static_cast<std::uint8_t>(c - 'a' + 26);
  if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0' + 52);
  if (c == '+') return 62;
  if (c == '/') return 63;
  if (c == '=') return 64;
  return 255;
}

}  // namespace

std::string base64_encode(const std::uint8_t* data, std::size_t n) {
  std::string out;
  out.reserve((n + 2) / 3 * 4);
  for (std::size_t i = 0; i < n; i += 3) {
    const std::uint32_t b0 = data[i];
    const std::uint32_t b1 = i + 1 < n ? data[i + 1] : 0;
    const std::uint32_t b2 = i + 2 < n ? data[i + 2] : 0;
    const std::uint32_t triple = (b0 << 16) | (b1 << 8) | b2;
    out.push_back(kB64Alphabet[(triple >> 18) & 0x3F]);
    out.push_back(kB64Alphabet[(triple >> 12) & 0x3F]);
    out.push_back(i + 1 < n ? kB64Alphabet[(triple >> 6) & 0x3F] : '=');
    out.push_back(i + 2 < n ? kB64Alphabet[triple & 0x3F] : '=');
  }
  return out;
}

std::string base64_encode(const std::vector<std::uint8_t>& data) {
  return base64_encode(data.data(), data.size());
}

std::vector<std::uint8_t> base64_decode(const std::string& text) {
  require_format(text.size() % 4 == 0, "base64: length not a multiple of 4");
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    std::uint8_t v[4];
    for (int j = 0; j < 4; ++j) {
      v[j] = b64_value(text[i + j]);
      require_format(v[j] != 255, "base64: invalid character");
    }
    // Padding only in the last two positions of the last quartet.
    const bool last = i + 4 == text.size();
    require_format(v[0] != 64 && v[1] != 64, "base64: misplaced padding");
    require_format(last || (v[2] != 64 && v[3] != 64), "base64: misplaced padding");
    require_format(v[2] != 64 || v[3] == 64, "base64: misplaced padding");
    const std::uint32_t triple = (static_cast<std::uint32_t>(v[0]) << 18) |
                                 (static_cast<std::uint32_t>(v[1]) << 12) |
                                 (static_cast<std::uint32_t>(v[2] & 0x3F) << 6) |
                                 (v[3] & 0x3F);
    out.push_back(static_cast<std::uint8_t>((triple >> 16) & 0xFF));
    if (v[2] != 64) out.push_back(static_cast<std::uint8_t>((triple >> 8) & 0xFF));
    if (v[3] != 64) out.push_back(static_cast<std::uint8_t>(triple & 0xFF));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Chunked transfers
// ---------------------------------------------------------------------------

namespace {

/// Parse-level sanity ceiling on a declared transfer size; real budgets are
/// enforced by TransferLimits. Keeps a hostile begin from minting absurd
/// uint64 reservations that overflow budget arithmetic.
constexpr std::uint64_t kMaxDeclaredTransferBytes = 1ull << 40;

/// Bound on the recently-failed-id set.
constexpr std::size_t kMaxDeadIds = 64;

const char* chunk_type_name(ChunkType t) {
  switch (t) {
    case ChunkType::kBegin: return "chunk_begin";
    case ChunkType::kData: return "chunk_data";
    case ChunkType::kEnd: return "chunk_end";
    case ChunkType::kAbort: return "chunk_abort";
  }
  return "unknown";
}

std::string require_transfer_id(const json::Value& v) {
  const std::string id = v.get("transfer", std::string());
  require_format(!id.empty() && id.size() <= kMaxTransferIdChars,
                 "protocol: transfer id must be 1..64 chars");
  return id;
}

}  // namespace

bool ChunkMessage::is_chunk(const json::Value& v) {
  if (!v.is_object()) return false;
  const std::string t = v.get("type", std::string());
  return t == "chunk_begin" || t == "chunk_data" || t == "chunk_end" ||
         t == "chunk_abort";
}

ChunkMessage ChunkMessage::parse(const json::Value& v) {
  require_format(v.is_object(), "protocol: chunk message must be a JSON object");
  ChunkMessage m;
  const std::string t = v.get("type", std::string());
  if (t == "chunk_begin") {
    m.type = ChunkType::kBegin;
  } else if (t == "chunk_data") {
    m.type = ChunkType::kData;
  } else if (t == "chunk_end") {
    m.type = ChunkType::kEnd;
  } else if (t == "chunk_abort") {
    m.type = ChunkType::kAbort;
  } else {
    throw FormatError("protocol: unknown chunk type '" + t + "'");
  }
  m.transfer = require_transfer_id(v);
  switch (m.type) {
    case ChunkType::kBegin: {
      const double total = v.get("total_bytes", -1.0);
      require_format(total >= 1 &&
                         total <= static_cast<double>(kMaxDeclaredTransferBytes),
                     "protocol: chunk_begin total_bytes out of range");
      m.total_bytes = static_cast<std::uint64_t>(total);
      break;
    }
    case ChunkType::kData: {
      const double seq = v.get("seq", -1.0);
      require_format(seq >= 0 && seq <= 1e15, "protocol: chunk_data seq out of range");
      m.seq = static_cast<std::uint64_t>(seq);
      const double crc = v.get("crc32", -1.0);
      require_format(crc >= 0 && crc <= 4294967295.0,
                     "protocol: chunk_data crc32 out of range");
      m.crc32 = static_cast<std::uint32_t>(crc);
      m.has_crc32 = true;
      const std::string payload = v.get("payload", std::string());
      require_format(!payload.empty(), "protocol: chunk_data missing payload");
      m.payload = base64_decode(payload);
      require_format(!m.payload.empty(), "protocol: chunk_data with empty payload");
      break;
    }
    case ChunkType::kEnd: {
      if (v.contains("crc32")) {
        const double crc = v.at("crc32").as_number();
        require_format(crc >= 0 && crc <= 4294967295.0,
                       "protocol: chunk_end crc32 out of range");
        m.crc32 = static_cast<std::uint32_t>(crc);
        m.has_crc32 = true;
      }
      break;
    }
    case ChunkType::kAbort:
      break;
  }
  return m;
}

json::Value ChunkMessage::to_json() const {
  json::Object o;
  o["type"] = chunk_type_name(type);
  o["transfer"] = transfer;
  switch (type) {
    case ChunkType::kBegin:
      o["total_bytes"] = static_cast<double>(total_bytes);
      break;
    case ChunkType::kData:
      o["seq"] = static_cast<double>(seq);
      o["crc32"] = static_cast<double>(crc32);
      o["payload"] = base64_encode(payload);
      break;
    case ChunkType::kEnd:
      if (has_crc32) o["crc32"] = static_cast<double>(crc32);
      break;
    case ChunkType::kAbort:
      break;
  }
  return json::Value(std::move(o));
}

TransferTable::TransferTable(TransferLimits limits,
                             std::atomic<std::int64_t>* reserved_gauge)
    : limits_(limits), gauge_(reserved_gauge) {}

TransferTable::~TransferTable() { clear(); }

void TransferTable::release_locked(std::uint64_t n) {
  reserved_ -= n;
  if (gauge_ != nullptr) gauge_->fetch_sub(static_cast<std::int64_t>(n));
}

TransferTable::Ack TransferTable::fail_locked(const std::string& id,
                                              const char* reason) {
  const auto it = transfers_.find(id);
  if (it != transfers_.end()) {
    release_locked(it->second.total);
    transfers_.erase(it);
  }
  if (dead_.size() >= kMaxDeadIds) dead_.erase(dead_.begin());
  dead_.insert(id);
  Ack ack;
  ack.transfer = id;
  ack.ok = false;
  ack.send = true;
  ack.reason = reason;
  return ack;
}

TransferTable::Ack TransferTable::apply(const ChunkMessage& m) {
  std::lock_guard<std::mutex> lock(mu_);
  Ack ack;
  ack.transfer = m.transfer;
  switch (m.type) {
    case ChunkType::kBegin: {
      dead_.erase(m.transfer);  // a fresh begin revives a failed id
      if (transfers_.count(m.transfer) != 0) {
        return fail_locked(m.transfer, "duplicate_begin");
      }
      if (m.total_bytes > limits_.max_transfer_bytes) {
        return fail_locked(m.transfer, "transfer_too_large");
      }
      if (transfers_.size() >= limits_.max_transfers) {
        return fail_locked(m.transfer, "too_many_transfers");
      }
      if (reserved_ + m.total_bytes > limits_.budget_bytes) {
        return fail_locked(m.transfer, "transfer_budget_exceeded");
      }
      Transfer& t = transfers_[m.transfer];
      t.total = m.total_bytes;
      t.bytes.reserve(static_cast<std::size_t>(m.total_bytes));
      reserved_ += m.total_bytes;
      if (gauge_ != nullptr) gauge_->fetch_add(static_cast<std::int64_t>(m.total_bytes));
      return ack;  // ok, send
    }
    case ChunkType::kData: {
      if (dead_.count(m.transfer) != 0) {
        ack.ok = false;
        ack.send = false;  // sender already heard the failure once
        return ack;
      }
      const auto it = transfers_.find(m.transfer);
      if (it == transfers_.end()) return fail_locked(m.transfer, "unknown_transfer");
      Transfer& t = it->second;
      if (t.sealed) return fail_locked(m.transfer, "transfer_sealed");
      if (m.seq != t.next_seq) return fail_locked(m.transfer, "bad_sequence");
      if (t.bytes.size() + m.payload.size() > t.total) {
        return fail_locked(m.transfer, "size_overflow");
      }
      if (cosmo::crc32(m.payload.data(), m.payload.size()) != m.crc32) {
        return fail_locked(m.transfer, "crc_mismatch");
      }
      t.bytes.insert(t.bytes.end(), m.payload.begin(), m.payload.end());
      t.next_seq += 1;
      t.idle.reset();
      ack.send = false;  // accepted data chunks are not acked
      return ack;
    }
    case ChunkType::kEnd: {
      if (dead_.count(m.transfer) != 0) {
        // Unlike data chunks, the end of a dead transfer is answered: the
        // uploader blocks on this ack, and a failure mid-stream (reap,
        // budget, crc) may have raced past its remaining data chunks.
        ack.ok = false;
        ack.reason = "unknown_transfer";
        return ack;
      }
      const auto it = transfers_.find(m.transfer);
      if (it == transfers_.end()) return fail_locked(m.transfer, "unknown_transfer");
      Transfer& t = it->second;
      if (t.sealed) return fail_locked(m.transfer, "transfer_sealed");
      if (t.bytes.size() != t.total) return fail_locked(m.transfer, "size_mismatch");
      const std::uint32_t whole = cosmo::crc32(t.bytes.data(), t.bytes.size());
      if (m.has_crc32 && whole != m.crc32) {
        return fail_locked(m.transfer, "crc_mismatch");
      }
      t.sealed = true;
      t.idle.reset();
      ack.completed = true;
      ack.received_bytes = t.total;
      ack.crc32 = whole;
      return ack;
    }
    case ChunkType::kAbort: {
      dead_.erase(m.transfer);
      const auto it = transfers_.find(m.transfer);
      if (it != transfers_.end()) {
        release_locked(it->second.total);
        transfers_.erase(it);
      }
      return ack;  // abort is idempotent: always ok
    }
  }
  return ack;
}

TransferTable::ClaimStatus TransferTable::claim(const std::string& id,
                                                std::vector<std::uint8_t>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return ClaimStatus::kMissing;
  if (!it->second.sealed) return ClaimStatus::kIncomplete;
  out = std::move(it->second.bytes);
  release_locked(it->second.total);
  transfers_.erase(it);
  return ClaimStatus::kOk;
}

void TransferTable::deposit(const std::string& id, std::vector<std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto size = static_cast<std::uint64_t>(bytes.size());
  if (size == 0 || size > limits_.max_transfer_bytes) return;
  if (transfers_.count(id) != 0 || transfers_.size() >= limits_.max_transfers) return;
  if (reserved_ + size > limits_.budget_bytes) return;
  Transfer& t = transfers_[id];
  t.total = size;
  t.sealed = true;
  t.bytes = std::move(bytes);
  reserved_ += size;
  if (gauge_ != nullptr) gauge_->fetch_add(static_cast<std::int64_t>(size));
}

bool TransferTable::contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return transfers_.count(id) != 0;
}

bool TransferTable::complete(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = transfers_.find(id);
  return it != transfers_.end() && it->second.sealed;
}

std::optional<std::uint64_t> TransferTable::complete_size(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = transfers_.find(id);
  if (it == transfers_.end() || !it->second.sealed) return std::nullopt;
  return it->second.total;
}

std::uint64_t TransferTable::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

std::size_t TransferTable::open_transfers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transfers_.size();
}

std::size_t TransferTable::reap_idle(double idle_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t reaped = 0;
  for (auto it = transfers_.begin(); it != transfers_.end();) {
    if (it->second.idle.seconds() > idle_seconds) {
      release_locked(it->second.total);
      if (dead_.size() >= kMaxDeadIds) dead_.erase(dead_.begin());
      dead_.insert(it->first);
      it = transfers_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

void TransferTable::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, t] : transfers_) release_locked(t.total);
  transfers_.clear();
  dead_.clear();
}

json::Value make_chunk_ack(const TransferTable::Ack& ack) {
  json::Object o;
  o["type"] = "chunk_ack";
  o["transfer"] = ack.transfer;
  o["ok"] = ack.ok;
  if (ack.reason != nullptr) o["reason"] = ack.reason;
  if (ack.completed) {
    o["completed"] = true;
    o["received_bytes"] = static_cast<double>(ack.received_bytes);
    o["crc32"] = static_cast<double>(ack.crc32);
  }
  return json::Value(std::move(o));
}

// ---------------------------------------------------------------------------
// Message schema
// ---------------------------------------------------------------------------

const char* request_type_name(RequestType t) {
  switch (t) {
    case RequestType::kPing: return "ping";
    case RequestType::kHello: return "hello";
    case RequestType::kMetrics: return "metrics";
    case RequestType::kShutdown: return "shutdown";
    case RequestType::kCompress: return "compress";
    case RequestType::kDecompress: return "decompress";
    case RequestType::kRoundtrip: return "roundtrip";
    case RequestType::kSweep: return "sweep";
  }
  return "unknown";
}

bool is_job_request(RequestType t) {
  return t == RequestType::kCompress || t == RequestType::kDecompress ||
         t == RequestType::kRoundtrip || t == RequestType::kSweep;
}

namespace {

RequestType parse_type(const std::string& name) {
  for (const RequestType t :
       {RequestType::kPing, RequestType::kHello, RequestType::kMetrics,
        RequestType::kShutdown, RequestType::kCompress, RequestType::kDecompress,
        RequestType::kRoundtrip, RequestType::kSweep}) {
    if (name == request_type_name(t)) return t;
  }
  throw FormatError("protocol: unknown request type '" + name + "'");
}

}  // namespace

JobRequest JobRequest::parse(const json::Value& v) {
  require_format(v.is_object(), "protocol: request must be a JSON object");
  JobRequest r;
  r.type = parse_type(v.get("type", std::string()));
  const double id = v.get("id", 0.0);
  require_format(id >= 0, "protocol: negative request id");
  r.id = static_cast<std::uint64_t>(id);
  if (v.contains("proto")) {
    const auto [major, minor] = parse_proto(v.at("proto").as_string());
    require_format(major >= 1, "protocol: proto major must be >= 1");
    r.proto_major = major;
    r.proto_minor = minor;
  }
  if (!is_job_request(r.type)) return r;

  r.deadline_seconds = v.get("deadline_seconds", 0.0);
  require_format(r.deadline_seconds >= 0, "protocol: negative deadline");
  r.priority = static_cast<int>(v.get("priority", 1.0));
  require_format(r.priority >= 0 && r.priority <= 15, "protocol: priority out of range");
  r.codec = v.get("codec", std::string());
  require_format(!r.codec.empty(), "protocol: job request missing codec");
  r.return_bytes = v.get("return_bytes", false);

  if (r.type == RequestType::kDecompress) {
    r.payload_b64 = v.get("payload", std::string());
    r.payload_transfer = v.get("payload_transfer", std::string());
    require_format(r.payload_b64.empty() || r.payload_transfer.empty(),
                   "protocol: decompress payload and payload_transfer are exclusive");
    require_format(!r.payload_b64.empty() || !r.payload_transfer.empty(),
                   "protocol: decompress request missing payload");
    require_format(r.payload_b64.size() <= static_cast<std::size_t>(kMaxFrameBytes),
                   "protocol: decompress payload too large");
    require_format(r.payload_transfer.size() <= kMaxTransferIdChars,
                   "protocol: transfer id must be 1..64 chars");
    return r;
  }

  require_format(v.contains("dataset"), "protocol: job request missing dataset spec");
  r.dataset = v.at("dataset");
  require_format(r.dataset.is_object(), "protocol: dataset spec must be an object");
  r.field = v.get("field", std::string());
  require_format(!r.field.empty(), "protocol: job request missing field");

  if (r.type == RequestType::kSweep) {
    require_format(v.contains("configs"), "protocol: sweep request missing configs");
    for (const auto& c : v.at("configs").as_array()) {
      require_format(c.is_object() && c.contains("mode") && c.contains("value"),
                     "protocol: sweep config needs mode and value");
      r.configs.emplace_back(c.at("mode").as_string(), c.at("value").as_number());
    }
    require_format(!r.configs.empty(), "protocol: sweep request with no configs");
    require_format(r.configs.size() <= 1024, "protocol: sweep config list too large");
  } else {
    r.mode = v.get("mode", std::string());
    require_format(!r.mode.empty(), "protocol: job request missing mode");
    r.value = v.get("value", 0.0);
  }
  return r;
}

json::Value JobRequest::to_json() const {
  json::Object o;
  o["type"] = request_type_name(type);
  if (id != 0) o["id"] = static_cast<double>(id);
  if (proto_major != 0) {
    o["proto"] = std::to_string(proto_major) + "." + std::to_string(proto_minor);
  }
  if (!is_job_request(type)) return json::Value(std::move(o));
  o["codec"] = codec;
  if (deadline_seconds > 0) o["deadline_seconds"] = deadline_seconds;
  if (priority != 1) o["priority"] = priority;
  if (return_bytes) o["return_bytes"] = true;
  if (type == RequestType::kDecompress) {
    if (!payload_transfer.empty()) {
      o["payload_transfer"] = payload_transfer;
    } else {
      o["payload"] = payload_b64;
    }
    return json::Value(std::move(o));
  }
  o["dataset"] = dataset;
  o["field"] = field;
  if (type == RequestType::kSweep) {
    json::Array lattice;
    for (const auto& [mode_name, config_value] : configs) {
      json::Object c;
      c["mode"] = mode_name;
      c["value"] = config_value;
      lattice.push_back(json::Value(std::move(c)));
    }
    o["configs"] = std::move(lattice);
  } else {
    o["mode"] = mode;
    o["value"] = value;
  }
  return json::Value(std::move(o));
}

json::Value make_rejection(std::uint64_t id, const char* reason) {
  json::Object o;
  o["type"] = "result";
  if (id != 0) o["id"] = static_cast<double>(id);
  o["status"] = kStatusRejected;
  o["reason"] = reason;
  return json::Value(std::move(o));
}

json::Value make_error(const std::string& what) {
  json::Object o;
  o["type"] = "error";
  o["error"] = what;
  return json::Value(std::move(o));
}

json::Value make_version_error(std::uint64_t id, int major, int minor) {
  json::Object o;
  o["type"] = "error";
  if (id != 0) o["id"] = static_cast<double>(id);
  o["error_code"] = "unsupported_version";
  o["error"] = "protocol: unsupported version " + std::to_string(major) + "." +
               std::to_string(minor) + " (daemon speaks " + proto_version_string() + ")";
  o["proto"] = proto_version_string();
  return json::Value(std::move(o));
}

Dims inline_dims(const json::Value& dataset_spec) {
  require_format(dataset_spec.is_object() && dataset_spec.contains("dims"),
                 "protocol: inline dataset missing dims");
  const auto& dims_json = dataset_spec.at("dims").as_array();
  require_format(!dims_json.empty() && dims_json.size() <= 3,
                 "protocol: inline dataset dims must have 1..3 extents");
  std::size_t extents[3] = {1, 1, 1};
  for (std::size_t i = 0; i < dims_json.size(); ++i) {
    const double e = dims_json[i].as_number();
    require_format(e >= 1 && e <= 1e9, "protocol: inline dataset extent out of range");
    extents[i] = static_cast<std::size_t>(e);
  }
  const Dims dims = Dims::d3(extents[0], extents[1], extents[2]);
  checked_stream_count(dims, "inline dataset");
  return dims;
}

}  // namespace cosmo::foresightd
