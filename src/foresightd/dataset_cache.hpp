/// \file dataset_cache.hpp
/// \brief Byte-budgeted LRU cache of built dataset containers.
///
/// Replaces the daemon's original clear-at-8-entries map: eviction is now
/// keyed by resident payload bytes, oldest-use first, so one 512³ field
/// (512 MiB) does not evict seven cheap 64³ test grids — and seven cheap
/// grids do not pin a budget's worth of large fields.
///
/// get_or_build() runs the builder *outside* the lock (dataset generation
/// can take seconds); a racing duplicate build is wasted work, never a
/// correctness problem, and the second insert is dropped in favor of the
/// first. Entries larger than the whole budget are returned uncached.
///
/// Hit/miss/eviction totals are mirrored to MetricsRegistry as
/// `foresightd.dataset_cache.{hits,misses,evictions}`.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "io/container.hpp"

namespace cosmo::foresightd {

class DatasetCache {
 public:
  using Value = std::shared_ptr<const io::Container>;
  using Builder = std::function<Value()>;

  /// \p capacity_bytes bounds the summed payload_bytes() of cached entries.
  explicit DatasetCache(std::uint64_t capacity_bytes);

  /// Returns the cached container for \p key, building (and caching) it on
  /// a miss. The builder runs without the cache lock held.
  Value get_or_build(const std::string& key, const Builder& build);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    Value value;
    std::uint64_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  void evict_until_fits_locked(std::uint64_t incoming_bytes);

  mutable std::mutex mu_;
  std::uint64_t capacity_;
  std::uint64_t resident_ = 0;
  std::list<std::string> lru_;  ///< front = most recently used
  std::map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace cosmo::foresightd
