#include "gpu/specs.hpp"

#include "common/error.hpp"
#include "common/str.hpp"

namespace cosmo::gpu {

const std::vector<DeviceSpec>& device_catalog() {
  // Paper Table I, verbatim.
  static const std::vector<DeviceSpec> catalog = {
      {"Nvidia RTX 2080Ti", "c. 2018", "Turing", "7.5", 11.0, 4352, 13.0, 448.0},
      {"Nvidia Tesla V100", "c. 2017", "Volta", "7.0-7.2", 16.0, 5120, 14.0, 900.0},
      {"Nvidia Titan V", "c. 2017", "Volta", "7.0-7.2", 12.0, 5120, 15.0, 650.0},
      {"Nvidia GTX 1080Ti", "c. 2017", "Pascal", "6.0-6.2", 11.0, 3584, 11.0, 485.0},
      {"Nvidia P6000", "c. 2016", "Pascal", "6.0-6.2", 24.0, 3840, 13.0, 433.0},
      {"Nvidia Tesla P100", "c. 2016", "Pascal", "6.0-6.2", 16.0, 3584, 9.5, 732.0},
      // Dual-die board: per-die values (the paper prints 12x2 / 2496x2 /
      // 4x2 / 240x2); a single kernel runs on one die.
      {"Nvidia Tesla K80", "c. 2014", "Kepler 2.0", "3.0-3.7", 12.0, 2496, 4.0, 240.0},
  };
  return catalog;
}

const DeviceSpec& find_device(const std::string& name) {
  const std::string needle = to_lower(name);
  for (const auto& d : device_catalog()) {
    if (to_lower(d.name).find(needle) != std::string::npos) return d;
  }
  throw InvalidArgument("gpu: unknown device '" + name + "'");
}

CpuSpec evaluation_cpu() { return CpuSpec{}; }

std::string format_table1() {
  std::string out;
  out += strprintf("%-20s %-9s %-11s %-10s %-8s %-8s %-14s %s\n", "GPU", "Release",
                   "Arch", "Compute", "Mem(GB)", "Shaders", "Peak FP32", "Mem B/W");
  out += std::string(100, '-') + "\n";
  for (const auto& d : device_catalog()) {
    out += strprintf("%-20s %-9s %-11s %-10s %-8.0f %-8d %-14s %s\n", d.name.c_str(),
                     d.release.c_str(), d.architecture.c_str(),
                     d.compute_capability.c_str(), d.memory_gb, d.shaders,
                     strprintf("%.1f TFLOPS", d.peak_fp32_tflops).c_str(),
                     strprintf("%.0f GB/s", d.memory_bw_gbps).c_str());
  }
  return out;
}

}  // namespace cosmo::gpu
