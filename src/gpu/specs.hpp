/// \file specs.hpp
/// \brief Device catalog reproducing paper Table I, plus the evaluation
/// CPUs, and the interconnect model shared by all devices.
///
/// "All the GPUs are connected to the host via 16-lane PCIe 3.0
/// interconnect" (Section IV-B3), so the transfer model is uniform; only
/// kernel rates differ per device.
#pragma once

#include <string>
#include <vector>

namespace cosmo::gpu {

/// One Table I row.
struct DeviceSpec {
  std::string name;
  std::string release;       ///< e.g. "c. 2018"
  std::string architecture;  ///< Turing / Volta / Pascal / Kepler
  std::string compute_capability;
  double memory_gb = 0.0;
  int shaders = 0;
  double peak_fp32_tflops = 0.0;
  double memory_bw_gbps = 0.0;  ///< GB/s
};

/// PCIe 3.0 x16 effective bandwidth (GB/s) — ~80% of the 15.75 GB/s raw.
inline constexpr double kPcieGbps = 12.5;
/// Per-transfer fixed latency (s): driver + DMA setup.
inline constexpr double kPcieLatency = 20e-6;

/// The seven GPUs of Table I, in the paper's order (2080Ti first).
const std::vector<DeviceSpec>& device_catalog();

/// Looks a device up by (case-insensitive substring) name; throws if absent.
const DeviceSpec& find_device(const std::string& name);

/// The evaluation CPU (PantaRhei): 20-core Intel Xeon Gold 6148.
struct CpuSpec {
  std::string name = "Intel Xeon Gold 6148";
  int cores = 20;
  /// Parallel efficiency applied when scaling 1-core measurements to
  /// multi-core estimates (documented substitution: the container exposes
  /// one core, so Fig. 8 multicore numbers are modeled).
  double parallel_efficiency = 0.85;
};

CpuSpec evaluation_cpu();

/// Formats the catalog as the Table I text table.
std::string format_table1();

}  // namespace cosmo::gpu
