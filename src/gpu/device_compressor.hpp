/// \file device_compressor.hpp
/// \brief cuZFP / GPU-SZ device front-ends: real codec execution + modeled
/// device timing, the combination the throughput experiments consume.
#pragma once

#include <cstdint>
#include <vector>

#include "common/field.hpp"
#include "fz/fz.hpp"
#include "gpu/sim.hpp"
#include "sz/pwrel.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace cosmo::gpu {

/// Bounded exponential backoff for transient device faults: a TransientError
/// from the simulator is retried up to max_attempts times, sleeping the
/// capped exponential base_delay, 2*base_delay, ... (capped at max_delay)
/// scaled by seeded jitter (common/backoff.hpp) between attempts. Each retry
/// sequence draws a distinct decorrelation salt, so concurrent jobs hitting
/// the same transient fault cannot synchronize their retries into a
/// thundering herd. Any other error — including OutOfMemoryError —
/// propagates immediately.
struct RetryPolicy {
  int max_attempts = 3;
  double base_delay_seconds = 0.5e-3;
  double max_delay_seconds = 50e-3;
  /// Fraction of the exponential delay the jitter may remove (0 = pure
  /// exponential) and the seed the jitter hash draws from.
  double jitter_fraction = 0.5;
  std::uint64_t jitter_seed = 0xB0FFB0FFB0FFB0FFull;
};

/// Output of a device-side compression.
struct DeviceCompressResult {
  std::vector<std::uint8_t> bytes;
  TimingBreakdown timing;
  double kernel_gbps = 0.0;  ///< modeled kernel rate used
  int attempts = 1;          ///< device attempts including retries
};

/// Output of a device-side decompression.
struct DeviceDecompressResult {
  std::vector<float> values;
  Dims dims;
  TimingBreakdown timing;
  double kernel_gbps = 0.0;
  int attempts = 1;  ///< device attempts including retries
};

/// cuZFP front-end (fixed-rate only, like the released cuZFP).
class CuZfpDevice {
 public:
  explicit CuZfpDevice(GpuSimulator& sim) : sim_(sim) {}

  /// Compresses at \p rate bits/value; assumes data already in device memory.
  DeviceCompressResult compress(std::span<const float> data, const Dims& dims, double rate);

  /// compress() variant reusing \p out's buffers (cleared, capacity kept) —
  /// the path staged sweep sessions use. Same modeled timing as compress().
  void compress_into(std::span<const float> data, const Dims& dims, double rate,
                     DeviceCompressResult& out);

  DeviceDecompressResult decompress(std::span<const std::uint8_t> bytes);

  /// decompress() variant reusing \p out's buffers.
  void decompress_into(std::span<const std::uint8_t> bytes, DeviceDecompressResult& out);

  /// Throughput reporting is supported for cuZFP.
  static constexpr bool throughput_supported() { return true; }

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

 private:
  GpuSimulator& sim_;
  RetryPolicy retry_;
};

/// GPU-SZ front-end (ABS and PW_REL-via-log modes; 3-D only, like the
/// OpenMP prototype — 1-D inputs must be reshaped by the caller, which is
/// the paper's dimension-conversion procedure).
class GpuSzDevice {
 public:
  explicit GpuSzDevice(GpuSimulator& sim) : sim_(sim) {}

  DeviceCompressResult compress_abs(std::span<const float> data, const Dims& dims,
                                    double abs_bound);
  DeviceCompressResult compress_pwrel(std::span<const float> data, const Dims& dims,
                                      double pwrel_bound);

  /// Buffer-reusing variants of the above (same modeled timing).
  void compress_abs_into(std::span<const float> data, const Dims& dims, double abs_bound,
                         DeviceCompressResult& out);
  void compress_pwrel_into(std::span<const float> data, const Dims& dims,
                           double pwrel_bound, DeviceCompressResult& out);

  DeviceDecompressResult decompress(std::span<const std::uint8_t> bytes);

  /// Buffer-reusing variant of decompress().
  void decompress_into(std::span<const std::uint8_t> bytes, DeviceDecompressResult& out);

  /// The paper excludes GPU-SZ throughput (unoptimized memory layout);
  /// callers should print N/A when this is false.
  static constexpr bool throughput_supported() { return false; }

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

 private:
  GpuSimulator& sim_;
  RetryPolicy retry_;
};

/// FZ-GPU front-end (ABS only, like the real codec). Rank-agnostic: the
/// chunked Lorenzo pipeline treats the field as a flat stream, so 1-D HACC
/// arrays need no reshape.
class FzDevice {
 public:
  explicit FzDevice(GpuSimulator& sim) : sim_(sim) {}

  DeviceCompressResult compress(std::span<const float> data, const Dims& dims,
                                double abs_bound);

  /// Buffer-reusing variant (same modeled timing).
  void compress_into(std::span<const float> data, const Dims& dims, double abs_bound,
                     DeviceCompressResult& out);

  DeviceDecompressResult decompress(std::span<const std::uint8_t> bytes);

  /// Buffer-reusing variant of decompress().
  void decompress_into(std::span<const std::uint8_t> bytes, DeviceDecompressResult& out);

  /// Throughput reporting is supported for FZ (it is the codec's headline).
  static constexpr bool throughput_supported() { return true; }

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

 private:
  GpuSimulator& sim_;
  RetryPolicy retry_;
};

}  // namespace cosmo::gpu
