/// \file sim.hpp
/// \brief Simulated GPU execution model.
///
/// Substitution for real CUDA hardware (see DESIGN.md): codec kernels are
/// executed bit-exactly on the CPU, while their *timing* is produced by an
/// analytic model of the device from Table I:
///  - transfers: PCIe 3.0 x16 with fixed latency (uniform across devices,
///    as the paper notes);
///  - kernels: memory-bandwidth-bound with a FLOPS-derived derating for
///    older architectures and a bitrate-dependent cost (the paper observes
///    kernel throughput decreasing with bitrate, Figs. 7/10);
///  - the {init, kernel, memcpy, free} breakdown of Fig. 7.
///
/// A small deterministic jitter models run-to-run variation so the paper's
/// 10-warmup / 10-measured methodology produces meaningful stddevs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "gpu/specs.hpp"
#include "random/rng.hpp"

namespace cosmo::gpu {

/// Fig. 7's four components, in seconds. The definition moved to
/// common/telemetry.hpp so StageTelemetry can embed it without a gpu
/// dependency; this alias keeps the historical gpu::TimingBreakdown name.
using TimingBreakdown = ::cosmo::TimingBreakdown;

/// A device-resident allocation handle.
using BufferId = std::uint64_t;

/// The simulator: memory accounting plus the timing model.
class GpuSimulator {
 public:
  explicit GpuSimulator(DeviceSpec spec, std::uint64_t seed = 1234);

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  /// Allocates device memory; throws OutOfMemoryError when the device
  /// would be oversubscribed.
  BufferId alloc(std::uint64_t bytes);

  /// Attaches a fault plan: every subsequent model_compression /
  /// model_decompression call polls it for injected transient errors and
  /// device-OOM. nullptr (the default) detaches it. The simulator also
  /// polls the process-wide fault::active() plan, so pipelines can inject
  /// faults without holding a simulator reference.
  void set_fault_plan(fault::FaultPlan* plan) { fault_plan_ = plan; }
  [[nodiscard]] fault::FaultPlan* fault_plan() const { return fault_plan_; }
  void free(BufferId id);
  [[nodiscard]] std::uint64_t used_bytes() const { return used_; }

  /// Host<->device transfer time for \p bytes (PCIe model, with jitter).
  double transfer_seconds(std::uint64_t bytes);

  /// Kernel time for processing \p raw_bytes at \p kernel_gbps (with jitter).
  double kernel_seconds(std::uint64_t raw_bytes, double kernel_gbps);

  /// Allocation / deallocation overheads.
  double alloc_seconds(std::uint64_t bytes);
  double free_seconds(std::uint64_t bytes);

  /// One codec family's modeled kernel rates (GB/s of uncompressed data).
  struct KernelRates {
    double compress_gbps = 0.0;
    double decompress_gbps = 0.0;
  };

  /// The kernel-rate catalog, keyed by a codec's kernel-profile id:
  ///   "zfp" — cuZFP-style transform coding, throughput falling with bitrate;
  ///   "sz"  — the GPU-SZ OpenMP prototype (unoptimized memory layout);
  ///   "fz"  — FZ-GPU-style bitshuffle pipeline (arXiv:2304.12557), the
  ///           fastest family with only a weak bitrate dependence.
  /// Unknown profiles throw InvalidArgument listing the known ones.
  [[nodiscard]] KernelRates kernel_rates(const std::string& profile, double bitrate) const;

  /// Registered kernel-profile ids, in catalog order.
  [[nodiscard]] static std::vector<std::string> kernel_profiles();

  /// cuZFP kernel rates (GB/s of uncompressed data) as a function of the
  /// fixed-rate bitrate; views over kernel_rates("zfp", ...). Decompression
  /// is slightly slower (embedded-stream decoding serializes more).
  [[nodiscard]] double zfp_compress_kernel_gbps(double bitrate) const;
  [[nodiscard]] double zfp_decompress_kernel_gbps(double bitrate) const;

  /// GPU-SZ prototype kernel rate (kernel_rates("sz", ...)). The paper
  /// excludes GPU-SZ throughput because the OpenMP prototype's memory
  /// layout is unoptimized; the model reflects that prototype status.
  [[nodiscard]] double sz_kernel_gbps() const;

  /// Full pipeline models (Fig. 7): compression assumes raw data already in
  /// device memory and moves only the compressed stream D2H; decompression
  /// moves the compressed stream H2D and leaves raw data on the device.
  TimingBreakdown model_compression(std::uint64_t raw_bytes, std::uint64_t compressed_bytes,
                                    double kernel_gbps);
  TimingBreakdown model_decompression(std::uint64_t raw_bytes,
                                      std::uint64_t compressed_bytes, double kernel_gbps);

  /// Baseline: moving the raw (uncompressed) data over PCIe (the red dashed
  /// line in Fig. 7).
  double baseline_transfer_seconds(std::uint64_t raw_bytes);

 private:
  double jitter();
  void poll_faults(const char* where);

  fault::FaultPlan* fault_plan_ = nullptr;
  DeviceSpec spec_;
  Rng rng_;
  std::uint64_t used_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<BufferId, std::uint64_t> allocations_;
};

/// Paper Section V-C methodology: runs \p model() 10 times as warm-up, then
/// 10 measured times, returning average/stddev statistics.
template <typename Fn>
RunningStats measure_with_warmup(Fn&& model, int warmups = 10, int runs = 10) {
  for (int i = 0; i < warmups; ++i) (void)model();
  RunningStats stats;
  for (int i = 0; i < runs; ++i) stats.add(model());
  return stats;
}

}  // namespace cosmo::gpu
