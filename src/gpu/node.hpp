/// \file node.hpp
/// \brief Multi-GPU node model (e.g. six Tesla V100s per Summit node).
///
/// The paper's headline system argument: "taking into account multiple GPUs
/// on a single node, for instance, six Nvidia Tesla V100 GPUs per Summit
/// node, cuZFP can significantly reduce the compression overhead to 1/40 of
/// the original multi-core compression overhead (e.g., from more than 10%
/// to lower than 0.3%)" (Section V-C). This model aggregates per-GPU
/// pipelines across a node: kernels run fully in parallel, while the PCIe
/// transfers of GPUs sharing a host link contend for bandwidth.
#pragma once

#include <cstdint>

#include "gpu/sim.hpp"

namespace cosmo::gpu {

/// A node with N identical GPUs.
struct NodeConfig {
  DeviceSpec gpu;
  int gpu_count = 6;            ///< Summit: six V100s
  int pcie_links = 2;           ///< independent host links (GPUs share links)
  double simulation_seconds = 10.0;  ///< time per simulation timestep (paper: ~10 s)
};

/// Aggregate timing of one snapshot's compression on the node.
struct NodeCompressionReport {
  double kernel_seconds = 0.0;     ///< parallel kernel time (max over GPUs)
  double transfer_seconds = 0.0;   ///< serialized over shared PCIe links
  double total_seconds = 0.0;
  double node_throughput_gbps = 0.0;  ///< snapshot bytes / total
  double overhead_fraction = 0.0;     ///< total / simulation step time
};

/// Models compressing a snapshot of \p snapshot_bytes split evenly over the
/// node's GPUs at fixed-rate \p bitrate (data resident on the GPUs; only the
/// compressed stream crosses PCIe, as in the paper's in-situ setup).
NodeCompressionReport model_node_compression(const NodeConfig& node,
                                             std::uint64_t snapshot_bytes,
                                             double bitrate);

/// The paper's comparison point: overhead fraction of a 20-core CPU
/// compressor with the given measured/modeled throughput.
double cpu_overhead_fraction(double cpu_gbps, std::uint64_t snapshot_bytes,
                             double simulation_seconds);

}  // namespace cosmo::gpu
