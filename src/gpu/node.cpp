#include "gpu/node.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cosmo::gpu {

NodeCompressionReport model_node_compression(const NodeConfig& node,
                                             std::uint64_t snapshot_bytes,
                                             double bitrate) {
  require(node.gpu_count >= 1, "node: need at least one GPU");
  require(node.pcie_links >= 1, "node: need at least one PCIe link");
  require(snapshot_bytes > 0, "node: empty snapshot");

  GpuSimulator sim(node.gpu);
  const std::uint64_t per_gpu =
      snapshot_bytes / static_cast<std::uint64_t>(node.gpu_count);
  const auto compressed_per_gpu =
      static_cast<std::uint64_t>(static_cast<double>(per_gpu) * bitrate / 32.0);

  // Kernels run concurrently on independent GPUs: node kernel time is one
  // GPU's kernel time.
  const double kernel =
      sim.kernel_seconds(per_gpu, sim.zfp_compress_kernel_gbps(bitrate));

  // Compressed streams cross the host links; links are shared, so each link
  // carries ceil(gpus / links) transfers back-to-back.
  const int per_link = (node.gpu_count + node.pcie_links - 1) / node.pcie_links;
  const double transfer =
      static_cast<double>(per_link) * sim.transfer_seconds(compressed_per_gpu);

  NodeCompressionReport report;
  report.kernel_seconds = kernel;
  report.transfer_seconds = transfer;
  report.total_seconds = kernel + transfer +
                         sim.alloc_seconds(compressed_per_gpu) +
                         sim.free_seconds(compressed_per_gpu);
  report.node_throughput_gbps =
      static_cast<double>(snapshot_bytes) / report.total_seconds / 1e9;
  report.overhead_fraction = report.total_seconds / node.simulation_seconds;
  return report;
}

double cpu_overhead_fraction(double cpu_gbps, std::uint64_t snapshot_bytes,
                             double simulation_seconds) {
  require(cpu_gbps > 0.0, "node: cpu throughput must be positive");
  const double seconds = static_cast<double>(snapshot_bytes) / (cpu_gbps * 1e9);
  return seconds / simulation_seconds;
}

}  // namespace cosmo::gpu
