#include "gpu/sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cosmo::gpu {

namespace {

/// FLOPS-derived derating: bandwidth-bound kernels still lose efficiency on
/// compute-poor architectures (Kepler), cf. Fig. 9's ordering.
double flop_factor(const DeviceSpec& spec) {
  return std::clamp(spec.peak_fp32_tflops / 12.0, 0.35, 1.0);
}

}  // namespace

GpuSimulator::GpuSimulator(DeviceSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {}

BufferId GpuSimulator::alloc(std::uint64_t bytes) {
  const auto capacity = static_cast<std::uint64_t>(spec_.memory_gb * 1e9);
  if (used_ + bytes > capacity) {
    throw OutOfMemoryError("gpu: device memory oversubscribed on " + spec_.name);
  }
  const BufferId id = next_id_++;
  allocations_[id] = bytes;
  used_ += bytes;
  return id;
}

void GpuSimulator::free(BufferId id) {
  const auto it = allocations_.find(id);
  require(it != allocations_.end(), "gpu: double free or unknown buffer");
  used_ -= it->second;
  allocations_.erase(it);
}

double GpuSimulator::jitter() {
  // ~N(1, 0.01), clamped: models run-to-run variation on a quiet node
  // ("all the standard deviation values are relatively negligible").
  return std::clamp(1.0 + 0.01 * rng_.normal(), 0.95, 1.05);
}

double GpuSimulator::transfer_seconds(std::uint64_t bytes) {
  return (kPcieLatency + static_cast<double>(bytes) / (kPcieGbps * 1e9)) * jitter();
}

double GpuSimulator::kernel_seconds(std::uint64_t raw_bytes, double kernel_gbps) {
  require(kernel_gbps > 0.0, "gpu: kernel rate must be positive");
  const double launch_latency = 8e-6;
  return (launch_latency + static_cast<double>(raw_bytes) / (kernel_gbps * 1e9)) * jitter();
}

double GpuSimulator::alloc_seconds(std::uint64_t bytes) {
  // cudaMalloc: driver overhead plus page-table setup growing with size.
  return (2.5e-4 + static_cast<double>(bytes) / 500e9) * jitter();
}

double GpuSimulator::free_seconds(std::uint64_t bytes) {
  return (1.2e-4 + static_cast<double>(bytes) / 1000e9) * jitter();
}

GpuSimulator::KernelRates GpuSimulator::kernel_rates(const std::string& profile,
                                                     double bitrate) const {
  const double bw = spec_.memory_bw_gbps * flop_factor(spec_);
  if (profile == "zfp") {
    // Memory-bound with bitrate-dependent coding cost: higher bitrates emit
    // more bit planes per block, so throughput falls with bitrate
    // (paper: "the kernel throughput is also decreased by increasing the
    // bitrate"). Decompression serializes more on the embedded stream.
    return {0.35 * bw / (1.0 + 0.15 * bitrate), 0.28 * bw / (1.0 + 0.15 * bitrate)};
  }
  if (profile == "sz") {
    // OpenMP prototype with unoptimized memory layout (paper Section IV-B1);
    // bitrate-independent because the prediction pass dominates.
    return {0.02 * bw, 0.02 * bw};
  }
  if (profile == "fz") {
    // FZ-GPU (arXiv:2304.12557): the bitshuffle + sparsifier passes are
    // byte-oriented and branch-light, so the pipeline runs near memory
    // bandwidth with only a weak bitrate dependence (denser planes mean a
    // little more sparsifier payload traffic).
    return {0.55 * bw / (1.0 + 0.04 * bitrate), 0.50 * bw / (1.0 + 0.04 * bitrate)};
  }
  throw InvalidArgument("gpu: unknown kernel profile '" + profile +
                        "' (known: zfp, sz, fz)");
}

std::vector<std::string> GpuSimulator::kernel_profiles() { return {"zfp", "sz", "fz"}; }

double GpuSimulator::zfp_compress_kernel_gbps(double bitrate) const {
  return kernel_rates("zfp", bitrate).compress_gbps;
}

double GpuSimulator::zfp_decompress_kernel_gbps(double bitrate) const {
  return kernel_rates("zfp", bitrate).decompress_gbps;
}

double GpuSimulator::sz_kernel_gbps() const { return kernel_rates("sz", 0.0).compress_gbps; }

void GpuSimulator::poll_faults(const char* where) {
  // Explicitly attached plan first, then the process-wide one; both are
  // nullptr in normal operation, so this is two pointer loads on the
  // fault-free path and the timing model (and its jitter stream) is
  // untouched.
  if (fault_plan_ != nullptr) {
    fault_plan_->maybe_throw_gpu_transient(where);
    fault_plan_->maybe_throw_gpu_oom(where);
  }
  if (auto* global = fault::active(); global != nullptr && global != fault_plan_) {
    global->maybe_throw_gpu_transient(where);
    global->maybe_throw_gpu_oom(where);
  }
}

TimingBreakdown GpuSimulator::model_compression(std::uint64_t raw_bytes,
                                                std::uint64_t compressed_bytes,
                                                double kernel_gbps) {
  poll_faults("model_compression");
  TimingBreakdown t;
  // init: parameter upload + output allocation on device.
  t.init = transfer_seconds(256) + alloc_seconds(compressed_bytes);
  t.kernel = kernel_seconds(raw_bytes, kernel_gbps);
  t.memcpy = transfer_seconds(compressed_bytes);  // D2H of compressed stream
  t.free = free_seconds(compressed_bytes);
  return t;
}

TimingBreakdown GpuSimulator::model_decompression(std::uint64_t raw_bytes,
                                                  std::uint64_t compressed_bytes,
                                                  double kernel_gbps) {
  poll_faults("model_decompression");
  TimingBreakdown t;
  t.init = transfer_seconds(256) + alloc_seconds(raw_bytes);
  t.memcpy = transfer_seconds(compressed_bytes);  // H2D of compressed stream
  t.kernel = kernel_seconds(raw_bytes, kernel_gbps);
  t.free = free_seconds(compressed_bytes);
  return t;
}

double GpuSimulator::baseline_transfer_seconds(std::uint64_t raw_bytes) {
  return transfer_seconds(raw_bytes);
}

}  // namespace cosmo::gpu
