#include "gpu/device_compressor.hpp"

namespace cosmo::gpu {

namespace {

double stream_bitrate(std::size_t compressed_bytes, std::size_t points) {
  return static_cast<double>(compressed_bytes) * 8.0 / static_cast<double>(points);
}

/// PW_REL streams begin with the "SZPR" magic; ABS streams begin with the
/// one-byte lossless flag (0 or 1), so the first byte disambiguates.
bool is_pwrel_stream(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= 4 && bytes[0] == 0x52 && bytes[1] == 0x50 && bytes[2] == 0x5A &&
         bytes[3] == 0x53;
}

}  // namespace

DeviceCompressResult CuZfpDevice::compress(std::span<const float> data, const Dims& dims,
                                           double rate) {
  zfp::Params params;
  params.mode = zfp::Mode::kFixedRate;
  params.rate = rate;
  DeviceCompressResult out;
  out.bytes = zfp::compress(data, dims, params);
  out.kernel_gbps = sim_.zfp_compress_kernel_gbps(rate);
  out.timing = sim_.model_compression(data.size() * sizeof(float), out.bytes.size(),
                                      out.kernel_gbps);
  return out;
}

DeviceDecompressResult CuZfpDevice::decompress(std::span<const std::uint8_t> bytes) {
  DeviceDecompressResult out;
  out.values = zfp::decompress(bytes, &out.dims);
  const double bitrate = stream_bitrate(bytes.size(), out.values.size());
  out.kernel_gbps = sim_.zfp_decompress_kernel_gbps(bitrate);
  out.timing = sim_.model_decompression(out.values.size() * sizeof(float), bytes.size(),
                                        out.kernel_gbps);
  return out;
}

DeviceCompressResult GpuSzDevice::compress_abs(std::span<const float> data, const Dims& dims,
                                               double abs_bound) {
  require(dims.rank() == 3,
          "GPU-SZ supports only 3-D data; reshape 1-D inputs first (paper Sec. IV-B4)");
  sz::Params params;
  params.abs_error_bound = abs_bound;
  DeviceCompressResult out;
  out.bytes = sz::compress(data, dims, params);
  out.kernel_gbps = sim_.sz_kernel_gbps();
  out.timing = sim_.model_compression(data.size() * sizeof(float), out.bytes.size(),
                                      out.kernel_gbps);
  return out;
}

DeviceCompressResult GpuSzDevice::compress_pwrel(std::span<const float> data,
                                                 const Dims& dims, double pwrel_bound) {
  require(dims.rank() == 3,
          "GPU-SZ supports only 3-D data; reshape 1-D inputs first (paper Sec. IV-B4)");
  sz::PwRelParams params;
  params.pw_rel_bound = pwrel_bound;
  DeviceCompressResult out;
  out.bytes = sz::compress_pwrel(data, dims, params);
  out.kernel_gbps = sim_.sz_kernel_gbps();
  out.timing = sim_.model_compression(data.size() * sizeof(float), out.bytes.size(),
                                      out.kernel_gbps);
  return out;
}

DeviceDecompressResult GpuSzDevice::decompress(std::span<const std::uint8_t> bytes) {
  DeviceDecompressResult out;
  if (is_pwrel_stream(bytes)) {
    out.values = sz::decompress_pwrel(bytes, &out.dims);
  } else {
    out.values = sz::decompress(bytes, &out.dims);
  }
  out.kernel_gbps = sim_.sz_kernel_gbps();
  out.timing = sim_.model_decompression(out.values.size() * sizeof(float), bytes.size(),
                                        out.kernel_gbps);
  return out;
}

}  // namespace cosmo::gpu
