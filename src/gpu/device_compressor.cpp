#include "gpu/device_compressor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/backoff.hpp"
#include "common/telemetry.hpp"

namespace cosmo::gpu {

namespace {

double stream_bitrate(std::size_t compressed_bytes, std::size_t points) {
  return static_cast<double>(compressed_bytes) * 8.0 / static_cast<double>(points);
}

/// Runs the device timing model with bounded, seeded-jitter exponential
/// backoff on TransientError (common/backoff.hpp — the schedule shared with
/// foresightd). Only the modeled device operation is retried — the codec
/// work itself is bit-exact and already done by the caller. \p attempts
/// records the total attempts (1 = no fault). The retry sequence claims a
/// process-wide salt on its first fault, decorrelating concurrent sequences
/// so daemon workers retrying together spread out instead of herding.
template <typename Fn>
TimingBreakdown run_with_retry(const RetryPolicy& policy, int& attempts, Fn&& model) {
  backoff::Policy schedule;
  schedule.base_delay_seconds = policy.base_delay_seconds;
  schedule.max_delay_seconds = policy.max_delay_seconds;
  schedule.jitter_fraction = policy.jitter_fraction;
  schedule.seed = policy.jitter_seed;
  std::uint64_t salt = 0;
  bool salted = false;
  for (attempts = 1;; ++attempts) {
    try {
      return model();
    } catch (const TransientError&) {
      telemetry::MetricsRegistry::instance().counter("gpu.transient_retries").add();
      if (attempts >= policy.max_attempts) throw;
      if (!salted) {
        salt = backoff::next_sequence_salt();
        salted = true;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff::delay_seconds(schedule, attempts, salt)));
    }
  }
}

}  // namespace

DeviceCompressResult CuZfpDevice::compress(std::span<const float> data, const Dims& dims,
                                           double rate) {
  DeviceCompressResult out;
  compress_into(data, dims, rate, out);
  return out;
}

void CuZfpDevice::compress_into(std::span<const float> data, const Dims& dims, double rate,
                                DeviceCompressResult& out) {
  TRACE_SPAN("gpu.device.compress");
  zfp::Params params;
  params.mode = zfp::Mode::kFixedRate;
  params.rate = rate;
  zfp::compress_into(data, dims, params, out.bytes);
  out.kernel_gbps = sim_.zfp_compress_kernel_gbps(rate);
  out.timing = run_with_retry(retry_, out.attempts, [&] {
    return sim_.model_compression(data.size() * sizeof(float), out.bytes.size(),
                                  out.kernel_gbps);
  });
}

DeviceDecompressResult CuZfpDevice::decompress(std::span<const std::uint8_t> bytes) {
  DeviceDecompressResult out;
  decompress_into(bytes, out);
  return out;
}

void CuZfpDevice::decompress_into(std::span<const std::uint8_t> bytes,
                                  DeviceDecompressResult& out) {
  TRACE_SPAN("gpu.device.decompress");
  zfp::decompress_into(bytes, out.values, &out.dims);
  const double bitrate = stream_bitrate(bytes.size(), out.values.size());
  out.kernel_gbps = sim_.zfp_decompress_kernel_gbps(bitrate);
  out.timing = run_with_retry(retry_, out.attempts, [&] {
    return sim_.model_decompression(out.values.size() * sizeof(float), bytes.size(),
                                    out.kernel_gbps);
  });
}

DeviceCompressResult GpuSzDevice::compress_abs(std::span<const float> data, const Dims& dims,
                                               double abs_bound) {
  DeviceCompressResult out;
  compress_abs_into(data, dims, abs_bound, out);
  return out;
}

void GpuSzDevice::compress_abs_into(std::span<const float> data, const Dims& dims,
                                    double abs_bound, DeviceCompressResult& out) {
  TRACE_SPAN("gpu.device.compress");
  require(dims.rank() == 3,
          "GPU-SZ supports only 3-D data; reshape 1-D inputs first (paper Sec. IV-B4)");
  sz::Params params;
  params.abs_error_bound = abs_bound;
  sz::compress_into(data, dims, params, out.bytes);
  out.kernel_gbps = sim_.sz_kernel_gbps();
  out.timing = run_with_retry(retry_, out.attempts, [&] {
    return sim_.model_compression(data.size() * sizeof(float), out.bytes.size(),
                                  out.kernel_gbps);
  });
}

DeviceCompressResult GpuSzDevice::compress_pwrel(std::span<const float> data,
                                                 const Dims& dims, double pwrel_bound) {
  DeviceCompressResult out;
  compress_pwrel_into(data, dims, pwrel_bound, out);
  return out;
}

void GpuSzDevice::compress_pwrel_into(std::span<const float> data, const Dims& dims,
                                      double pwrel_bound, DeviceCompressResult& out) {
  TRACE_SPAN("gpu.device.compress");
  require(dims.rank() == 3,
          "GPU-SZ supports only 3-D data; reshape 1-D inputs first (paper Sec. IV-B4)");
  sz::PwRelParams params;
  params.pw_rel_bound = pwrel_bound;
  sz::compress_pwrel_into(data, dims, params, out.bytes);
  out.kernel_gbps = sim_.sz_kernel_gbps();
  out.timing = run_with_retry(retry_, out.attempts, [&] {
    return sim_.model_compression(data.size() * sizeof(float), out.bytes.size(),
                                  out.kernel_gbps);
  });
}

DeviceDecompressResult GpuSzDevice::decompress(std::span<const std::uint8_t> bytes) {
  DeviceDecompressResult out;
  decompress_into(bytes, out);
  return out;
}

void GpuSzDevice::decompress_into(std::span<const std::uint8_t> bytes,
                                  DeviceDecompressResult& out) {
  TRACE_SPAN("gpu.device.decompress");
  if (sz::is_pwrel_stream(bytes)) {
    sz::decompress_pwrel_into(bytes, out.values, &out.dims);
  } else {
    sz::decompress_into(bytes, out.values, &out.dims);
  }
  out.kernel_gbps = sim_.sz_kernel_gbps();
  out.timing = run_with_retry(retry_, out.attempts, [&] {
    return sim_.model_decompression(out.values.size() * sizeof(float), bytes.size(),
                                    out.kernel_gbps);
  });
}

DeviceCompressResult FzDevice::compress(std::span<const float> data, const Dims& dims,
                                        double abs_bound) {
  DeviceCompressResult out;
  compress_into(data, dims, abs_bound, out);
  return out;
}

void FzDevice::compress_into(std::span<const float> data, const Dims& dims, double abs_bound,
                             DeviceCompressResult& out) {
  TRACE_SPAN("gpu.device.compress");
  fz::Params params;
  params.abs_error_bound = abs_bound;
  fz::compress_into(data, dims, params, out.bytes);
  // FZ's kernel rate depends (weakly) on the achieved bitrate, which is
  // only known after the sparsifier ran.
  const double bitrate = stream_bitrate(out.bytes.size(), data.size());
  out.kernel_gbps = sim_.kernel_rates("fz", bitrate).compress_gbps;
  out.timing = run_with_retry(retry_, out.attempts, [&] {
    return sim_.model_compression(data.size() * sizeof(float), out.bytes.size(),
                                  out.kernel_gbps);
  });
}

DeviceDecompressResult FzDevice::decompress(std::span<const std::uint8_t> bytes) {
  DeviceDecompressResult out;
  decompress_into(bytes, out);
  return out;
}

void FzDevice::decompress_into(std::span<const std::uint8_t> bytes,
                               DeviceDecompressResult& out) {
  TRACE_SPAN("gpu.device.decompress");
  fz::decompress_into(bytes, out.values, &out.dims);
  const double bitrate = stream_bitrate(bytes.size(), out.values.size());
  out.kernel_gbps = sim_.kernel_rates("fz", bitrate).decompress_gbps;
  out.timing = run_with_retry(retry_, out.attempts, [&] {
    return sim_.model_decompression(out.values.size() * sizeof(float), bytes.size(),
                                    out.kernel_gbps);
  });
}

}  // namespace cosmo::gpu
