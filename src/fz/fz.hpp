/// \file fz.hpp
/// \brief FZ-GPU-style error-bounded compressor (arXiv:2304.12557): Lorenzo
/// quantization followed by a bit-plane *bitshuffle* transpose and a
/// zero-run sparsified lossless stage.
///
/// The FZ-GPU pipeline replaces cuSZ's Huffman stage with two cheap,
/// massively parallel passes: quantization codes are remapped so that the
/// common (well-predicted) values use small symbols, the 16 bit-planes of
/// the symbol array are transposed into contiguous byte planes
/// ("bitshuffle"), and the resulting mostly-zero planes are stored as a
/// bitmap of non-zero 16-byte groups plus their payload ("zero-run
/// sparsification"). Both passes are branch-light and byte-oriented, which
/// is what makes the real codec faster than cuSZ at similar ratios.
///
/// This port keeps the exact stream format independent of thread count:
/// values are split into fixed-size chunks (each Lorenzo-predicted from a
/// zero seed, so chunks are independent), chunks are encoded in parallel,
/// and the payloads are concatenated deterministically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/field.hpp"
#include "common/thread_pool.hpp"

namespace cosmo::fz {

struct Params {
  double abs_error_bound = 1e-3;
  /// Values per independent chunk. Part of the stream format: the chunk
  /// geometry is fixed at encode time, so streams are byte-identical for
  /// any thread count.
  std::size_t chunk_values = 4096;
  /// Quantizer radius; codes land in [0, 2*radius). Must stay <= 1<<15 so
  /// remapped symbols fit the 16 bit-planes of the shuffle stage.
  std::uint32_t radius = 1u << 15;
};

struct Stats {
  std::size_t n_values = 0;
  std::size_t n_unpredictable = 0;
  std::size_t compressed_bytes = 0;
  double bit_rate = 0.0;  ///< bits per value
};

/// --- Stage primitives (exposed for benches, fuzzing and tests) ----------

/// Transposes \p codes into 16 bit-planes, LSB plane first. Each plane is
/// ceil(n/8) bytes; byte j of a plane packs the bit for codes[8j..8j+7]
/// (code index k contributes bit k%8). Returns 16 * ceil(n/8) bytes.
std::vector<std::uint8_t> bitshuffle(std::span<const std::uint16_t> codes);

/// Inverse of bitshuffle. \p count is the original code count; throws
/// FormatError when \p planes is not exactly 16 * ceil(count/8) bytes.
std::vector<std::uint16_t> bitunshuffle(std::span<const std::uint8_t> planes,
                                        std::size_t count);

/// Sparsifies \p bytes: a bitmap flags which 16-byte groups contain any
/// non-zero byte; only those groups' bytes are stored. Self-describing
/// (leads with the original length).
std::vector<std::uint8_t> zero_run_encode(std::span<const std::uint8_t> bytes);

/// Inverse of zero_run_encode; throws FormatError on malformed input and
/// bounds the output allocation by the input size (a corrupted length
/// cannot cause an unbounded allocation).
std::vector<std::uint8_t> zero_run_decode(std::span<const std::uint8_t> bytes);

/// --- Full codec ----------------------------------------------------------

/// Compresses \p data under an absolute error bound. Deterministic: the
/// stream depends only on data, dims and params, never on \p pool.
std::vector<std::uint8_t> compress(std::span<const float> data, const Dims& dims,
                                   const Params& params, Stats* stats = nullptr,
                                   ThreadPool* pool = nullptr);

/// In/out variant reusing the caller's buffer.
void compress_into(std::span<const float> data, const Dims& dims, const Params& params,
                   std::vector<std::uint8_t>& out, Stats* stats = nullptr,
                   ThreadPool* pool = nullptr);

/// Decompresses a stream produced by compress(). Throws FormatError for
/// malformed input; never crashes or overallocates on corrupted headers.
std::vector<float> decompress(std::span<const std::uint8_t> bytes, Dims* out_dims = nullptr,
                              ThreadPool* pool = nullptr);

/// In/out variant reusing the caller's buffer.
void decompress_into(std::span<const std::uint8_t> bytes, std::vector<float>& out,
                     Dims* out_dims = nullptr, ThreadPool* pool = nullptr);

}  // namespace cosmo::fz
