#include "fz/fz.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "sz/quantizer.hpp"

namespace cosmo::fz {

namespace {

constexpr std::uint32_t kMagic = 0x31435A46;  // "FZC1"
constexpr std::size_t kMaxChunkValues = 1u << 20;
constexpr std::size_t kGroupBytes = 16;  // zero-run sparsifier group size

/// Little-endian byte buffer serializer (same layout rules as sz::).
struct ByteWriter {
  std::vector<std::uint8_t> bytes;

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void raw(const std::uint8_t* p, std::size_t n) { bytes.insert(bytes.end(), p, p + n); }
};

/// Little-endian deserializer with overflow-safe bounds checks.
struct ByteReader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  // pos <= size() is an invariant, so compare against the remaining byte
  // count instead of forming pos + n (which wraps for corrupted lengths).
  void need(std::size_t n) const {
    require_format(n <= bytes.size() - pos, "fz: truncated stream");
  }
  [[nodiscard]] std::size_t remaining() const { return bytes.size() - pos; }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  [[nodiscard]] std::span<const std::uint8_t> view(std::size_t n) {
    need(n);
    auto s = bytes.subspan(pos, n);
    pos += n;
    return s;
  }
};

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Symbol remap: code 0 (unpredictable) stays 0; a predictable code is
/// re-centered around the radius and zigzag-encoded so that well-predicted
/// values become *small* symbols. Raw codes cluster at the radius (0x8000),
/// which would make the high bit-planes all-ones and defeat the zero-run
/// sparsifier; after the remap those planes are almost entirely zero.
std::uint16_t remap_code(std::uint32_t code, std::uint32_t radius) {
  const std::int32_t centered = static_cast<std::int32_t>(code) - static_cast<std::int32_t>(radius);
  const std::uint32_t zigzag =
      (static_cast<std::uint32_t>(centered) << 1) ^ static_cast<std::uint32_t>(centered >> 31);
  return static_cast<std::uint16_t>(zigzag + 1);
}

/// Inverse of remap_code for a nonzero symbol; throws FormatError when the
/// symbol decodes outside the quantizer's code space.
std::uint32_t unmap_symbol(std::uint16_t symbol, std::uint32_t radius) {
  const std::uint32_t zigzag = static_cast<std::uint32_t>(symbol) - 1;
  const std::int32_t centered =
      static_cast<std::int32_t>(zigzag >> 1) ^ -static_cast<std::int32_t>(zigzag & 1);
  const std::int64_t code = static_cast<std::int64_t>(centered) + radius;
  require_format(code >= 1 && code <= 2 * static_cast<std::int64_t>(radius) - 1,
                 "fz: symbol outside code space");
  return static_cast<std::uint32_t>(code);
}

/// Appends the zero-run stream for \p planes to \p w.
void zero_run_encode_into(std::span<const std::uint8_t> planes, ByteWriter& w) {
  w.u64(planes.size());
  const std::size_t groups = ceil_div(planes.size(), kGroupBytes);
  const std::size_t bitmap_bytes = ceil_div(groups, 8);
  const std::size_t bitmap_at = w.bytes.size();
  w.bytes.resize(bitmap_at + bitmap_bytes, 0);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t lo = g * kGroupBytes;
    const std::size_t hi = std::min(lo + kGroupBytes, planes.size());
    bool nonzero = false;
    for (std::size_t i = lo; i < hi && !nonzero; ++i) nonzero = planes[i] != 0;
    if (nonzero) {
      w.bytes[bitmap_at + g / 8] |= static_cast<std::uint8_t>(1u << (g % 8));
      w.raw(planes.data() + lo, hi - lo);
    }
  }
}

/// Decodes a zero-run stream from \p r into \p out. When \p expected_len is
/// non-null the declared length must match it exactly (the chunk decoder
/// knows the plane size up front); otherwise the length is bounded by what
/// the bitmap alone implies about the input size, so a corrupted header
/// cannot drive an unbounded allocation.
void zero_run_decode_into(ByteReader& r, std::vector<std::uint8_t>& out,
                          const std::size_t* expected_len) {
  const std::uint64_t declared = r.u64();
  if (expected_len != nullptr) {
    require_format(declared == *expected_len, "fz: zero-run length mismatch");
  }
  const std::size_t len = static_cast<std::size_t>(declared);
  require_format(declared == len, "fz: zero-run length overflow");
  const std::size_t groups = ceil_div(len, kGroupBytes);
  const std::size_t bitmap_bytes = ceil_div(groups, 8);
  // A valid stream carries at least the bitmap, which caps len at roughly
  // 128x the remaining input — the overalloc guard for corrupted lengths.
  require_format(bitmap_bytes <= r.remaining(), "fz: zero-run bitmap truncated");
  const auto bitmap = r.view(bitmap_bytes);
  out.assign(len, 0);
  for (std::size_t g = 0; g < groups; ++g) {
    if ((bitmap[g / 8] >> (g % 8) & 1u) == 0) continue;
    const std::size_t lo = g * kGroupBytes;
    const std::size_t n = std::min(kGroupBytes, len - lo);
    const auto payload = r.view(n);
    std::copy(payload.begin(), payload.end(), out.begin() + static_cast<std::ptrdiff_t>(lo));
  }
}

/// Encodes one chunk: quantize + remap, bitshuffle, zero-run sparsify.
void encode_chunk(std::span<const float> values, const Params& params,
                  std::vector<std::uint8_t>& payload, std::size_t& n_unpred) {
  const sz::Quantizer quantizer(params.abs_error_bound, params.radius);
  std::vector<std::uint16_t> symbols(values.size());
  std::vector<float> unpredictable;
  float prev = 0.0f;  // fixed seed => chunks are independent
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto q = quantizer.quantize(values[i], prev);
    if (q.code == 0) {
      symbols[i] = 0;
      unpredictable.push_back(values[i]);
      prev = values[i];
    } else {
      symbols[i] = remap_code(q.code, params.radius);
      prev = q.reconstructed;
    }
  }
  const auto planes = bitshuffle(symbols);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(unpredictable.size()));
  for (const float v : unpredictable) w.f32(v);
  zero_run_encode_into(planes, w);
  payload = std::move(w.bytes);
  n_unpred = unpredictable.size();
}

/// Decodes one chunk payload into \p out (exactly \p count values).
void decode_chunk(std::span<const std::uint8_t> payload, double bound, std::uint32_t radius,
                  std::span<float> out) {
  ByteReader r{payload};
  const std::uint32_t n_unpred = r.u32();
  require_format(n_unpred <= out.size(), "fz: unpredictable count exceeds chunk");
  require_format(n_unpred <= r.remaining() / 4, "fz: unpredictable table truncated");
  std::vector<float> unpredictable(n_unpred);
  for (auto& v : unpredictable) v = r.f32();

  const std::size_t expected_planes = 16 * ceil_div(out.size(), 8);
  std::vector<std::uint8_t> planes;
  zero_run_decode_into(r, planes, &expected_planes);
  require_format(r.remaining() == 0, "fz: trailing bytes in chunk");
  const auto symbols = bitunshuffle(planes, out.size());

  const sz::Quantizer quantizer(bound, radius);
  float prev = 0.0f;
  std::size_t next_unpred = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (symbols[i] == 0) {
      require_format(next_unpred < n_unpred, "fz: unpredictable table underrun");
      prev = unpredictable[next_unpred++];
    } else {
      prev = quantizer.reconstruct(unmap_symbol(symbols[i], radius), prev);
    }
    out[i] = prev;
  }
  require_format(next_unpred == n_unpred, "fz: unpredictable table overrun");
}

}  // namespace

std::vector<std::uint8_t> bitshuffle(std::span<const std::uint16_t> codes) {
  const std::size_t plane_bytes = ceil_div(codes.size(), 8);
  std::vector<std::uint8_t> out(16 * plane_bytes, 0);
  for (std::size_t k = 0; k < codes.size(); ++k) {
    std::uint16_t v = codes[k];
    if (v == 0) continue;  // fast path: well-predicted symbols are tiny
    const std::size_t byte = k >> 3;
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << (k & 7));
    while (v != 0) {
      const int b = std::countr_zero(v);
      out[static_cast<std::size_t>(b) * plane_bytes + byte] |= bit;
      v &= static_cast<std::uint16_t>(v - 1);
    }
  }
  return out;
}

std::vector<std::uint16_t> bitunshuffle(std::span<const std::uint8_t> planes,
                                        std::size_t count) {
  const std::size_t plane_bytes = ceil_div(count, 8);
  require_format(planes.size() == 16 * plane_bytes, "fz: bitshuffle plane size mismatch");
  std::vector<std::uint16_t> out(count, 0);
  for (std::size_t b = 0; b < 16; ++b) {
    const std::uint8_t* plane = planes.data() + b * plane_bytes;
    for (std::size_t j = 0; j < plane_bytes; ++j) {
      std::uint8_t byte = plane[j];
      while (byte != 0) {
        const std::size_t k = j * 8 + static_cast<std::size_t>(std::countr_zero(byte));
        require_format(k < count, "fz: nonzero padding in bitshuffle tail");
        out[k] |= static_cast<std::uint16_t>(1u << b);
        byte &= static_cast<std::uint8_t>(byte - 1);
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> zero_run_encode(std::span<const std::uint8_t> bytes) {
  ByteWriter w;
  zero_run_encode_into(bytes, w);
  return std::move(w.bytes);
}

std::vector<std::uint8_t> zero_run_decode(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  std::vector<std::uint8_t> out;
  zero_run_decode_into(r, out, nullptr);
  require_format(r.remaining() == 0, "fz: trailing bytes after zero-run stream");
  return out;
}

void compress_into(std::span<const float> data, const Dims& dims, const Params& params,
                   std::vector<std::uint8_t>& out, Stats* stats, ThreadPool* pool) {
  TRACE_SPAN("fz.compress");
  require(data.size() == dims.count(), "fz: data size does not match dims");
  require(!data.empty(), "fz: empty input");
  require(params.abs_error_bound > 0.0 && std::isfinite(params.abs_error_bound),
          "fz: abs_error_bound must be positive and finite");
  require(params.chunk_values >= 1 && params.chunk_values <= kMaxChunkValues,
          "fz: chunk_values out of range");
  require(params.radius >= 2 && params.radius <= (1u << 15), "fz: radius out of range");

  const std::size_t n = data.size();
  const std::size_t n_chunks = ceil_div(n, params.chunk_values);
  std::vector<std::vector<std::uint8_t>> payloads(n_chunks);
  std::vector<std::size_t> unpred_counts(n_chunks, 0);
  parallel_for(pool, n_chunks,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t c = lo; c < hi; ++c) {
                   const std::size_t base = c * params.chunk_values;
                   const std::size_t count = std::min(params.chunk_values, n - base);
                   encode_chunk(data.subspan(base, count), params, payloads[c],
                                unpred_counts[c]);
                 }
               },
               /*min_grain=*/1);

  ByteWriter w;
  w.u32(kMagic);
  w.u32(0);  // reserved flags
  w.u64(dims.nx);
  w.u64(dims.ny);
  w.u64(dims.nz);
  w.f64(params.abs_error_bound);
  w.u32(params.radius);
  w.u32(static_cast<std::uint32_t>(params.chunk_values));
  w.u32(static_cast<std::uint32_t>(n_chunks));
  for (const auto& p : payloads) w.u32(static_cast<std::uint32_t>(p.size()));
  for (const auto& p : payloads) w.raw(p.data(), p.size());
  out = std::move(w.bytes);

  if (stats != nullptr) {
    stats->n_values = n;
    stats->n_unpredictable = 0;
    for (const std::size_t c : unpred_counts) stats->n_unpredictable += c;
    stats->compressed_bytes = out.size();
    stats->bit_rate = 8.0 * static_cast<double>(out.size()) / static_cast<double>(n);
  }
}

std::vector<std::uint8_t> compress(std::span<const float> data, const Dims& dims,
                                   const Params& params, Stats* stats, ThreadPool* pool) {
  std::vector<std::uint8_t> out;
  compress_into(data, dims, params, out, stats, pool);
  return out;
}

void decompress_into(std::span<const std::uint8_t> bytes, std::vector<float>& out,
                     Dims* out_dims, ThreadPool* pool) {
  TRACE_SPAN("fz.decompress");
  ByteReader r{bytes};
  require_format(r.u32() == kMagic, "fz: bad magic");
  require_format(r.u32() == 0, "fz: unsupported flags");
  Dims dims;
  dims.nx = static_cast<std::size_t>(r.u64());
  dims.ny = static_cast<std::size_t>(r.u64());
  dims.nz = static_cast<std::size_t>(r.u64());
  const std::size_t n = checked_stream_count(dims, "fz");
  const double bound = r.f64();
  require_format(std::isfinite(bound) && bound > 0.0, "fz: bad error bound");
  const std::uint32_t radius = r.u32();
  require_format(radius >= 2 && radius <= (1u << 15), "fz: bad radius");
  const std::uint32_t chunk_values = r.u32();
  require_format(chunk_values >= 1 && chunk_values <= kMaxChunkValues,
                 "fz: bad chunk size");
  const std::uint32_t n_chunks = r.u32();
  require_format(n_chunks == ceil_div(n, chunk_values), "fz: chunk count mismatch");
  // Every value costs at least ~1/64 byte in the shuffled bitmap, so a
  // genuine stream bounds n by its own size — the overalloc guard.
  require_format(n / 64 <= bytes.size(), "fz: declared value count exceeds stream bound");
  require_format(n_chunks <= r.remaining() / 4, "fz: truncated chunk table");

  std::vector<std::size_t> offsets(n_chunks + 1, 0);
  for (std::size_t c = 0; c < n_chunks; ++c) offsets[c + 1] = offsets[c] + r.u32();
  require_format(offsets[n_chunks] == r.remaining(), "fz: payload size mismatch");
  const auto payloads = r.view(offsets[n_chunks]);

  out.assign(n, 0.0f);
  parallel_for(pool, n_chunks,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t c = lo; c < hi; ++c) {
                   const std::size_t base = c * static_cast<std::size_t>(chunk_values);
                   const std::size_t count =
                       std::min<std::size_t>(chunk_values, n - base);
                   decode_chunk(payloads.subspan(offsets[c], offsets[c + 1] - offsets[c]),
                                bound, radius,
                                std::span<float>(out).subspan(base, count));
                 }
               },
               /*min_grain=*/1);
  if (out_dims != nullptr) *out_dims = dims;
}

std::vector<float> decompress(std::span<const std::uint8_t> bytes, Dims* out_dims,
                              ThreadPool* pool) {
  std::vector<float> out;
  decompress_into(bytes, out, out_dims, pool);
  return out;
}

}  // namespace cosmo::fz
