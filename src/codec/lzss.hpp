/// \file lzss.hpp
/// \brief LZSS dictionary coder (hash-chain match finder, 64 KiB window).
///
/// Stands in for the Zstd lossless back-end the released SZ uses after
/// Huffman coding. The role in the pipeline — squeezing residual
/// redundancy out of the Huffman header + payload and of the
/// unpredictable-data section — is identical; only the absolute speed
/// differs, which is irrelevant to the reproduction's quality results.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"

namespace cosmo {

class ScratchArena;

/// Compresses \p input; output is self-describing (stores original size).
/// When \p arena is given, the hash-chain match tables are leased from it
/// (and returned on exit) so repeated calls reuse their capacity; the arena
/// must not be shared across threads. Streams are byte-identical with or
/// without an arena.
std::vector<std::uint8_t> lzss_encode(const std::vector<std::uint8_t>& input,
                                      ScratchArena* arena = nullptr);

/// Encodes with the pre-fast-path encoder (byte-at-a-time match compares,
/// per-field token emission, freshly allocated chain tables). Exposed so
/// tests can pin the fast encode path to the reference stream byte for
/// byte; not a production entry point.
std::vector<std::uint8_t> lzss_encode_reference(const std::vector<std::uint8_t>& input);

/// Inverse of lzss_encode() or lzss_encode_chunked() (dispatches on the
/// magic). Throws FormatError on malformed input.
std::vector<std::uint8_t> lzss_decode(const std::vector<std::uint8_t>& input);

/// Chunked container: the input is split into fixed chunks of \p chunk_bytes
/// (0 selects the default, 1 MiB) and each chunk is an independent LZSS
/// stream, so both directions parallelize over chunks on \p pool. The chunk
/// geometry is fixed by chunk_bytes — never the pool size — so the output is
/// byte-identical for any thread count. Matches at chunk boundaries are
/// forfeited (~0.1% ratio loss at the default size).
std::vector<std::uint8_t> lzss_encode_chunked(const std::vector<std::uint8_t>& input,
                                              ThreadPool* pool = nullptr,
                                              std::size_t chunk_bytes = 0);

/// True when \p bytes starts with the chunked-container magic.
bool is_chunked_lzss(const std::vector<std::uint8_t>& bytes);

/// Decodes an lzss_encode_chunked() container, chunk-parallel on \p pool.
std::vector<std::uint8_t> lzss_decode_chunked(const std::vector<std::uint8_t>& bytes,
                                              ThreadPool* pool = nullptr);

}  // namespace cosmo
