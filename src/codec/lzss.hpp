/// \file lzss.hpp
/// \brief LZSS dictionary coder (hash-chain match finder, 64 KiB window).
///
/// Stands in for the Zstd lossless back-end the released SZ uses after
/// Huffman coding. The role in the pipeline — squeezing residual
/// redundancy out of the Huffman header + payload and of the
/// unpredictable-data section — is identical; only the absolute speed
/// differs, which is irrelevant to the reproduction's quality results.
#pragma once

#include <cstdint>
#include <vector>

namespace cosmo {

/// Compresses \p input; output is self-describing (stores original size).
std::vector<std::uint8_t> lzss_encode(const std::vector<std::uint8_t>& input);

/// Inverse of lzss_encode(); throws FormatError on malformed input.
std::vector<std::uint8_t> lzss_decode(const std::vector<std::uint8_t>& input);

}  // namespace cosmo
