/// \file fpc.hpp
/// \brief FPC-style lossless floating-point compressor.
///
/// The paper's background (Section II-A): "Lossless compressors such as
/// FPZIP and FPC can provide only compression ratios typically lower than
/// 2:1 for dense scientific data because of the significant randomness of
/// the ending mantissa bits." This comparator makes that claim measurable:
/// values are predicted (FCM and DFCM hash predictors, like FPC), the
/// prediction is XORed with the truth, and the leading-zero bytes of the
/// XOR are run-length coded — exactly the structure of Burtscher's FPC,
/// adapted to 32-bit floats.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cosmo {

/// Losslessly compresses a float array.
std::vector<std::uint8_t> fpc_encode(std::span<const float> values);

/// Exact inverse of fpc_encode().
std::vector<float> fpc_decode(std::span<const std::uint8_t> bytes);

}  // namespace cosmo
