#include "codec/rle.hpp"

#include "common/error.hpp"

namespace cosmo {

namespace {
constexpr std::uint8_t kEscape = 0xFF;
constexpr std::size_t kMinRun = 4;
constexpr std::size_t kMaxRun = 255;
}  // namespace

std::vector<std::uint8_t> rle_encode(const std::vector<std::uint8_t>& input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  std::size_t i = 0;
  while (i < input.size()) {
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i] && run < kMaxRun) ++run;
    if (run >= kMinRun || input[i] == kEscape) {
      out.push_back(kEscape);
      out.push_back(static_cast<std::uint8_t>(run));
      out.push_back(input[i]);
      i += run;
    } else {
      out.push_back(input[i]);
      ++i;
    }
  }
  return out;
}

std::vector<std::uint8_t> rle_decode(const std::vector<std::uint8_t>& input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() * 2);
  std::size_t i = 0;
  while (i < input.size()) {
    if (input[i] == kEscape) {
      require_format(i + 2 < input.size(), "rle: truncated escape sequence");
      const std::size_t run = input[i + 1];
      require_format(run >= 1, "rle: zero-length run");
      out.insert(out.end(), run, input[i + 2]);
      i += 3;
    } else {
      out.push_back(input[i]);
      ++i;
    }
  }
  return out;
}

}  // namespace cosmo
