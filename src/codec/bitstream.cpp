#include "codec/bitstream.hpp"

namespace cosmo {

void BitWriter::append(const BitWriter& other) {
  for (const std::uint64_t w : other.words_) put(w, 64);
  if (other.cur_bits_ > 0) put(other.cur_, other.cur_bits_);
}

std::vector<std::uint8_t> BitWriter::finish() const {
  // Whole words serialize LSB-first, i.e. little-endian byte order; writing
  // into a pre-sized buffer (instead of push_back per byte) keeps the loop
  // store-bound. Bytes are identical to the byte-at-a-time version.
  std::vector<std::uint8_t> out((bit_count_ + 7) / 8);
  std::uint8_t* dst = out.data();
  for (const std::uint64_t w : words_) {
    for (unsigned i = 0; i < 8; ++i) dst[i] = static_cast<std::uint8_t>(w >> (8 * i));
    dst += 8;
  }
  if (cur_bits_ > 0) {
    const unsigned tail = (cur_bits_ + 7) / 8;
    for (unsigned i = 0; i < tail; ++i) dst[i] = static_cast<std::uint8_t>(cur_ >> (8 * i));
  }
  return out;
}

void BitWriter::clear() {
  words_.clear();
  cur_ = 0;
  cur_bits_ = 0;
  bit_count_ = 0;
}

std::uint64_t BitReader::get_slow(unsigned nbits) {
  if (nbits == 0) return 0;
  require(nbits <= 64, "BitReader::get: nbits > 64");
  // 57..64 bits: check the full width up front (so a failed read does not
  // move the cursor), then split into two in-bounds fast reads.
  require_format(nbits <= remaining(), "BitReader: read past end of stream");
  const std::uint64_t lo = get(32);
  const std::uint64_t hi = get(nbits - 32);
  return lo | (hi << 32);
}

void BitReader::seek(std::uint64_t bit_pos) {
  require_format(bit_pos <= size_bits_, "BitReader::seek: position past end");
  const std::uint64_t byte = bit_pos >> 3;
  const unsigned frac = static_cast<unsigned>(bit_pos & 7);
  buf_ = 0;
  buf_bits_ = 0;
  next_byte_ = byte;
  if (frac != 0) {
    // Load the straddled byte and drop its already-consumed low bits.
    buf_ = static_cast<std::uint64_t>(data_[byte]) >> frac;
    buf_bits_ = 8 - frac;
    next_byte_ = byte + 1;
  }
}

}  // namespace cosmo
