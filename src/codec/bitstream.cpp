#include "codec/bitstream.hpp"

namespace cosmo {

void BitWriter::put(std::uint64_t value, unsigned nbits) {
  require(nbits <= 64, "BitWriter::put: nbits > 64");
  if (nbits == 0) return;
  if (nbits < 64) value &= (1ull << nbits) - 1;
  cur_ |= value << cur_bits_;
  const unsigned room = 64 - cur_bits_;
  if (nbits >= room) {
    words_.push_back(cur_);
    // Remaining high bits of value (safe: room >= 1, so shift < 64 unless
    // nbits == room == 64 where value >> 64 would be UB).
    cur_ = room < 64 ? (value >> room) : 0;
    cur_bits_ = nbits - room;
  } else {
    cur_bits_ += nbits;
  }
  bit_count_ += nbits;
}

void BitWriter::append(const BitWriter& other) {
  for (const std::uint64_t w : other.words_) put(w, 64);
  if (other.cur_bits_ > 0) put(other.cur_, other.cur_bits_);
}

std::vector<std::uint8_t> BitWriter::finish() const {
  std::vector<std::uint8_t> out;
  out.reserve((bit_count_ + 7) / 8);
  auto push_word = [&out](std::uint64_t w, unsigned bytes) {
    for (unsigned i = 0; i < bytes; ++i) out.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
  };
  for (const std::uint64_t w : words_) push_word(w, 8);
  if (cur_bits_ > 0) push_word(cur_, (cur_bits_ + 7) / 8);
  return out;
}

void BitWriter::clear() {
  words_.clear();
  cur_ = 0;
  cur_bits_ = 0;
  bit_count_ = 0;
}

std::uint64_t BitReader::get(unsigned nbits) {
  require(nbits <= 64, "BitReader::get: nbits > 64");
  if (nbits == 0) return 0;
  require_format(pos_ + nbits <= size_bits_, "BitReader: read past end of stream");
  std::uint64_t out = 0;
  unsigned got = 0;
  while (got < nbits) {
    const std::uint64_t byte_idx = (pos_ + got) / 8;
    const unsigned bit_idx = static_cast<unsigned>((pos_ + got) % 8);
    const unsigned take = std::min(nbits - got, 8 - bit_idx);
    const std::uint64_t bits =
        (static_cast<std::uint64_t>(data_[byte_idx]) >> bit_idx) & ((1ull << take) - 1);
    out |= bits << got;
    got += take;
  }
  pos_ += nbits;
  return out;
}

void BitReader::seek(std::uint64_t bit_pos) {
  require_format(bit_pos <= size_bits_, "BitReader::seek: position past end");
  pos_ = bit_pos;
}

}  // namespace cosmo
