#include "codec/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

namespace cosmo {

namespace {

constexpr std::uint32_t kMagic = 0x48554646;  // "HUFF"
constexpr unsigned kMaxCodeLen = 58;          // fits in a u64 alongside length

struct Node {
  std::uint64_t freq;
  int left = -1;   // index into node pool, -1 for leaf
  int right = -1;
  std::uint32_t symbol = 0;
};

/// Computes code lengths by building the Huffman tree over the node pool.
void assign_depths(const std::vector<Node>& pool, int idx, unsigned depth,
                   std::vector<unsigned>& lengths,
                   const std::vector<std::uint32_t>& leaf_symbol_index) {
  const Node& n = pool[static_cast<std::size_t>(idx)];
  if (n.left < 0) {
    lengths[leaf_symbol_index[n.symbol]] = std::max(1u, depth);
    return;
  }
  assign_depths(pool, n.left, depth + 1, lengths, leaf_symbol_index);
  assign_depths(pool, n.right, depth + 1, lengths, leaf_symbol_index);
}

/// Canonical code assignment: symbols sorted by (length, symbol value).
struct CanonicalEntry {
  std::uint32_t symbol;
  unsigned length;
  std::uint64_t code;  // MSB-first canonical code
};

std::vector<CanonicalEntry> canonicalize(const std::vector<std::uint32_t>& alphabet,
                                         const std::vector<unsigned>& lengths) {
  std::vector<CanonicalEntry> entries;
  entries.reserve(alphabet.size());
  for (std::size_t i = 0; i < alphabet.size(); ++i) {
    entries.push_back({alphabet[i], lengths[i], 0});
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });
  std::uint64_t code = 0;
  unsigned prev_len = entries.empty() ? 0 : entries.front().length;
  for (auto& e : entries) {
    code <<= (e.length - prev_len);
    e.code = code;
    ++code;
    prev_len = e.length;
  }
  return entries;
}

}  // namespace

std::vector<unsigned> huffman_code_lengths(const std::vector<std::uint64_t>& freqs) {
  std::vector<unsigned> lengths(freqs.size(), 0);
  // Collect leaves.
  std::vector<Node> pool;
  std::vector<std::uint32_t> leaf_symbol_index(freqs.size(), 0);
  std::uint32_t nonzero = 0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] == 0) continue;
    leaf_symbol_index[i] = static_cast<std::uint32_t>(i);
    pool.push_back({freqs[i], -1, -1, static_cast<std::uint32_t>(i)});
    ++nonzero;
  }
  if (nonzero == 0) return lengths;
  if (nonzero == 1) {
    lengths[pool.front().symbol] = 1;
    return lengths;
  }
  // Min-heap of (freq, node index); tie-break on node index for determinism.
  using Item = std::pair<std::uint64_t, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (std::size_t i = 0; i < pool.size(); ++i) heap.push({pool[i].freq, static_cast<int>(i)});
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    pool.push_back({fa + fb, a, b, 0});
    heap.push({fa + fb, static_cast<int>(pool.size() - 1)});
  }
  std::vector<std::uint32_t> identity(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) identity[i] = static_cast<std::uint32_t>(i);
  assign_depths(pool, heap.top().second, 0, lengths, identity);
  return lengths;
}

double shannon_entropy_bits(const std::vector<std::uint64_t>& freqs) {
  std::uint64_t total = 0;
  for (const auto f : freqs) total += f;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto f : freqs) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<std::uint8_t> huffman_encode(const std::vector<std::uint32_t>& symbols) {
  // Dense frequency map over the sparse alphabet.
  std::map<std::uint32_t, std::uint64_t> freq_map;
  for (const auto s : symbols) ++freq_map[s];

  std::vector<std::uint32_t> alphabet;
  std::vector<std::uint64_t> freqs;
  alphabet.reserve(freq_map.size());
  freqs.reserve(freq_map.size());
  for (const auto& [sym, f] : freq_map) {
    alphabet.push_back(sym);
    freqs.push_back(f);
  }
  std::vector<unsigned> lengths = huffman_code_lengths(freqs);
  for (const auto len : lengths) {
    require(len <= kMaxCodeLen, "huffman: code length exceeds limit (pathological distribution)");
  }
  auto entries = canonicalize(alphabet, lengths);

  // Per-symbol lookup for encoding.
  std::map<std::uint32_t, std::pair<std::uint64_t, unsigned>> codebook;
  for (const auto& e : entries) codebook[e.symbol] = {e.code, e.length};

  BitWriter bw;
  bw.put(kMagic, 32);
  bw.put(symbols.size(), 64);
  bw.put(entries.size(), 32);
  for (const auto& e : entries) {
    bw.put(e.symbol, 32);
    bw.put(e.length, 6);
  }
  for (const auto s : symbols) {
    const auto [code, len] = codebook.at(s);
    // Canonical codes are MSB-first; emit bits high-to-low so the decoder
    // can do prefix matching by accumulating one bit at a time.
    for (unsigned i = 0; i < len; ++i) bw.put_bit(((code >> (len - 1 - i)) & 1) != 0);
  }
  return bw.finish();
}

std::vector<std::uint32_t> huffman_decode(const std::vector<std::uint8_t>& bytes) {
  BitReader br(bytes);
  require_format(br.get(32) == kMagic, "huffman: bad magic");
  const std::uint64_t count = br.get(64);
  const std::uint32_t alpha_size = static_cast<std::uint32_t>(br.get(32));
  std::vector<CanonicalEntry> entries(alpha_size);
  for (auto& e : entries) {
    e.symbol = static_cast<std::uint32_t>(br.get(32));
    e.length = static_cast<unsigned>(br.get(6));
    require_format(e.length >= 1 && e.length <= kMaxCodeLen, "huffman: bad code length");
  }
  require_format(count == 0 || alpha_size > 0, "huffman: empty alphabet with nonzero count");

  // Rebuild canonical codes (entries arrive sorted by (length, symbol)).
  std::uint64_t code = 0;
  unsigned prev_len = entries.empty() ? 0 : entries.front().length;
  for (auto& e : entries) {
    require_format(e.length >= prev_len, "huffman: header not canonically sorted");
    code <<= (e.length - prev_len);
    e.code = code;
    ++code;
    prev_len = e.length;
  }

  // first_code / first_index per length for O(1)-per-bit canonical decoding.
  std::vector<std::uint64_t> first_code(kMaxCodeLen + 2, 0);
  std::vector<std::uint32_t> first_index(kMaxCodeLen + 2, 0);
  std::vector<std::uint32_t> count_at(kMaxCodeLen + 2, 0);
  for (const auto& e : entries) ++count_at[e.length];
  {
    std::uint32_t idx = 0;
    std::uint64_t c = 0;
    unsigned len = entries.empty() ? 1 : entries.front().length;
    for (unsigned l = len; l <= kMaxCodeLen + 1; ++l) {
      first_code[l] = c;
      first_index[l] = idx;
      idx += count_at[l];
      c = (c + count_at[l]) << 1;
    }
  }

  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t acc = 0;
    unsigned len = 0;
    for (;;) {
      acc = (acc << 1) | (br.get_bit() ? 1u : 0u);
      ++len;
      require_format(len <= kMaxCodeLen, "huffman: code too long in stream");
      if (count_at[len] > 0 && acc >= first_code[len] &&
          acc < first_code[len] + count_at[len]) {
        const std::uint32_t idx =
            first_index[len] + static_cast<std::uint32_t>(acc - first_code[len]);
        out.push_back(entries[idx].symbol);
        break;
      }
    }
  }
  return out;
}

}  // namespace cosmo
