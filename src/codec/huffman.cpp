#include "codec/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

namespace cosmo {

namespace {

constexpr std::uint32_t kMagic = 0x48554646;         // "HUFF"
constexpr std::uint32_t kChunkedMagic = 0x48554643;  // "HUFC"
constexpr unsigned kMaxCodeLen = 58;                 // fits in a u64 alongside length
constexpr std::size_t kDefaultChunkSymbols = 1u << 18;

struct Node {
  std::uint64_t freq;
  int left = -1;   // index into node pool, -1 for leaf
  int right = -1;
  std::uint32_t symbol = 0;
};

/// Computes code lengths by building the Huffman tree over the node pool.
void assign_depths(const std::vector<Node>& pool, int idx, unsigned depth,
                   std::vector<unsigned>& lengths,
                   const std::vector<std::uint32_t>& leaf_symbol_index) {
  const Node& n = pool[static_cast<std::size_t>(idx)];
  if (n.left < 0) {
    lengths[leaf_symbol_index[n.symbol]] = std::max(1u, depth);
    return;
  }
  assign_depths(pool, n.left, depth + 1, lengths, leaf_symbol_index);
  assign_depths(pool, n.right, depth + 1, lengths, leaf_symbol_index);
}

/// Canonical code assignment: symbols sorted by (length, symbol value).
struct CanonicalEntry {
  std::uint32_t symbol;
  unsigned length;
  std::uint64_t code;  // MSB-first canonical code
};

std::vector<CanonicalEntry> canonicalize(const std::vector<std::uint32_t>& alphabet,
                                         const std::vector<unsigned>& lengths) {
  std::vector<CanonicalEntry> entries;
  entries.reserve(alphabet.size());
  for (std::size_t i = 0; i < alphabet.size(); ++i) {
    entries.push_back({alphabet[i], lengths[i], 0});
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });
  std::uint64_t code = 0;
  unsigned prev_len = entries.empty() ? 0 : entries.front().length;
  for (auto& e : entries) {
    code <<= (e.length - prev_len);
    e.code = code;
    ++code;
    prev_len = e.length;
  }
  return entries;
}

/// Histogram of \p symbols as parallel (alphabet, freqs) vectors sorted by
/// symbol — the same (symbol -> count) relation the old std::map frequency
/// pass produced, in the same order, so the codebook built from it is
/// identical.
struct FreqTable {
  std::vector<std::uint32_t> alphabet;
  std::vector<std::uint64_t> freqs;
};

/// Alphabet spans counted with a dense array. Quantization codes cluster
/// in a few-thousand-symbol band around the radius, so the dense path is
/// the production one; wider alphabets fall back to the sparse map.
constexpr std::uint64_t kDenseHistSpan = 1u << 22;

FreqTable count_freqs(const std::uint32_t* syms, std::size_t n) {
  FreqTable ft;
  if (n == 0) return ft;
  std::uint32_t lo = syms[0], hi = syms[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, syms[i]);
    hi = std::max(hi, syms[i]);
  }
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  if (span <= kDenseHistSpan) {
    std::vector<std::uint64_t> hist(static_cast<std::size_t>(span), 0);
    for (std::size_t i = 0; i < n; ++i) ++hist[syms[i] - lo];
    for (std::size_t s = 0; s < hist.size(); ++s) {
      if (hist[s] == 0) continue;
      ft.alphabet.push_back(lo + static_cast<std::uint32_t>(s));
      ft.freqs.push_back(hist[s]);
    }
  } else {
    std::map<std::uint32_t, std::uint64_t> freq_map;
    for (std::size_t i = 0; i < n; ++i) ++freq_map[syms[i]];
    for (const auto& [sym, f] : freq_map) {
      ft.alphabet.push_back(sym);
      ft.freqs.push_back(f);
    }
  }
  return ft;
}

/// Canonical entries for a histogram (tree + length-limited check +
/// canonical ordering) — the codebook both container formats share.
std::vector<CanonicalEntry> entries_for(const FreqTable& ft) {
  std::vector<unsigned> lengths = huffman_code_lengths(ft.freqs);
  for (const auto len : lengths) {
    require(len <= kMaxCodeLen, "huffman: code length exceeds limit (pathological distribution)");
  }
  return canonicalize(ft.alphabet, lengths);
}

/// Encoder-side lookup: dense array over [min_symbol, max_symbol] when the
/// alphabet span is small (quantization codes cluster around the radius),
/// std::map fallback otherwise. Each dense entry packs the bit-reversed
/// code next to its length (code << 6 | length, kMaxCodeLen = 58 fits), so
/// the emit loop is one table load plus one BitWriter::put per symbol —
/// no per-symbol branching — and still writes the exact MSB-first bit
/// sequence the per-bit loop used to produce.
struct EncodeTable {
  std::uint32_t min_symbol = 0;
  std::vector<std::uint64_t> dense;  // reversed code << 6 | length
  std::map<std::uint32_t, std::pair<std::uint64_t, unsigned>> sparse;

  explicit EncodeTable(const std::vector<CanonicalEntry>& entries) {
    if (entries.empty()) return;
    std::uint32_t lo = entries.front().symbol, hi = entries.front().symbol;
    for (const auto& e : entries) {
      lo = std::min(lo, e.symbol);
      hi = std::max(hi, e.symbol);
    }
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
    if (span <= kDenseHistSpan) {
      min_symbol = lo;
      dense.assign(static_cast<std::size_t>(span), 0);
    }
    for (const auto& e : entries) {
      std::uint64_t rev = 0;
      for (unsigned i = 0; i < e.length; ++i) {
        rev |= ((e.code >> (e.length - 1 - i)) & 1u) << i;
      }
      if (!dense.empty()) {
        dense[e.symbol - min_symbol] = rev << 6 | e.length;
      } else {
        sparse[e.symbol] = {rev, e.length};
      }
    }
  }

  /// Appends the codes for \p syms[0..n) to \p bw. The dense/sparse
  /// decision is hoisted out of the loop; the dense loop body is a load,
  /// a shift pair, and a put.
  void encode_all(BitWriter& bw, const std::uint32_t* syms, std::size_t n) const {
    if (!dense.empty()) {
      const std::uint64_t* const table = dense.data();
      const std::uint32_t base = min_symbol;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t e = table[syms[i] - base];
        bw.put(e >> 6, static_cast<unsigned>(e & 63));
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const auto& [code, len] = sparse.at(syms[i]);
        bw.put(code, len);
      }
    }
  }

  /// Exact payload bit count for a histogram encoded with this table
  /// (sum of freq * length) — lets encoders reserve the stream up front.
  [[nodiscard]] std::uint64_t payload_bits(const FreqTable& ft) const {
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < ft.alphabet.size(); ++i) {
      const unsigned len =
          !dense.empty() ? static_cast<unsigned>(dense[ft.alphabet[i] - min_symbol] & 63)
                         : sparse.at(ft.alphabet[i]).second;
      bits += ft.freqs[i] * len;
    }
    return bits;
  }
};

/// Bit width of the direct-lookup decode table: 2^12 slots cover every
/// code of length <= 12, which in practice is the whole alphabet for SZ
/// quantization codes (the near-radius cluster). Longer codes fall back to
/// the canonical first_code/first_index scan.
constexpr unsigned kFastBits = 12;

/// Decoder-side canonical tables (first_code / first_index per length) plus
/// a 2^kFastBits direct-lookup table for short codes.
struct DecodeTable {
  /// One slot per kFastBits-wide stream window. `len == 0` marks "no code
  /// of length <= kFastBits starts here" (long code or corrupt prefix).
  struct FastEntry {
    std::uint32_t symbol = 0;
    std::uint8_t len = 0;
  };

  std::vector<CanonicalEntry> entries;
  std::vector<std::uint64_t> first_code = std::vector<std::uint64_t>(kMaxCodeLen + 2, 0);
  std::vector<std::uint32_t> first_index = std::vector<std::uint32_t>(kMaxCodeLen + 2, 0);
  std::vector<std::uint32_t> count_at = std::vector<std::uint32_t>(kMaxCodeLen + 2, 0);
  std::vector<FastEntry> fast = std::vector<FastEntry>(std::size_t{1} << kFastBits);

  /// Rebuilds canonical codes from (symbol, length) pairs that must arrive
  /// sorted by (length, symbol) — the stored header order.
  explicit DecodeTable(std::vector<CanonicalEntry> in) : entries(std::move(in)) {
    std::uint64_t code = 0;
    unsigned prev_len = entries.empty() ? 0 : entries.front().length;
    for (auto& e : entries) {
      require_format(e.length >= prev_len, "huffman: header not canonically sorted");
      code <<= (e.length - prev_len);
      e.code = code;
      // An overfull (Kraft > 1) length set assigns some entry a code that
      // no longer fits in its own length; such a header can never have come
      // from the encoder.
      require_format(e.length >= 64 || e.code < (std::uint64_t{1} << e.length),
                     "huffman: header code lengths overfull");
      ++code;
      prev_len = e.length;
    }
    for (const auto& e : entries) ++count_at[e.length];
    std::uint32_t idx = 0;
    std::uint64_t c = 0;
    const unsigned len = entries.empty() ? 1 : entries.front().length;
    for (unsigned l = len; l <= kMaxCodeLen + 1; ++l) {
      first_code[l] = c;
      first_index[l] = idx;
      idx += count_at[l];
      c = (c + count_at[l]) << 1;
    }
    // Direct-lookup table: the stream stores codes MSB-first, read LSB-first,
    // so a code of length L occupies the low L bits of a peeked window in
    // bit-reversed order. Fill every window whose low bits spell the code.
    for (const auto& e : entries) {
      if (e.length > kFastBits) continue;
      std::uint32_t rev = 0;
      for (unsigned b = 0; b < e.length; ++b) {
        rev |= static_cast<std::uint32_t>((e.code >> (e.length - 1 - b)) & 1u) << b;
      }
      const std::uint32_t step = 1u << e.length;
      for (std::uint32_t k = rev; k < (1u << kFastBits); k += step) {
        fast[k] = {e.symbol, static_cast<std::uint8_t>(e.length)};
      }
    }
  }

  /// Canonical bit-at-a-time decode of one symbol — the reference path and
  /// the fallback for codes longer than kFastBits.
  std::uint32_t decode_one_canonical(BitReader& br) const {
    std::uint64_t acc = 0;
    unsigned len = 0;
    for (;;) {
      acc = (acc << 1) | (br.get_bit() ? 1u : 0u);
      ++len;
      require_format(len <= kMaxCodeLen, "huffman: code too long in stream");
      if (count_at[len] > 0 && acc >= first_code[len] &&
          acc < first_code[len] + count_at[len]) {
        const std::uint32_t idx =
            first_index[len] + static_cast<std::uint32_t>(acc - first_code[len]);
        return entries[idx].symbol;
      }
    }
  }

  /// Decodes \p count symbols from \p br into \p out (sized by the caller).
  /// Table fast path: one peek + one table load + one skip per symbol.
  /// peek() zero-pads past the end of the stream, so a table hit near the
  /// end is only committed if skip() confirms the code fits in the
  /// remaining bits — a truncated stream throws FormatError exactly like
  /// the canonical path.
  void decode_into(BitReader& br, std::uint32_t* out, std::uint64_t count) const {
    const FastEntry* table = fast.data();
    for (std::uint64_t i = 0; i < count; ++i) {
      const FastEntry fe = table[br.peek(kFastBits)];
      if (fe.len != 0) {
        br.skip(fe.len);
        out[i] = fe.symbol;
      } else {
        out[i] = decode_one_canonical(br);
      }
    }
  }

  /// decode_into without the table — kept for the fast-vs-fallback
  /// equivalence test (huffman_decode_reference).
  void decode_into_reference(BitReader& br, std::uint32_t* out, std::uint64_t count) const {
    for (std::uint64_t i = 0; i < count; ++i) out[i] = decode_one_canonical(br);
  }
};

/// Reads the (symbol, length) header section shared by both formats.
std::vector<CanonicalEntry> read_entries(BitReader& br, std::uint32_t alpha_size) {
  // Each table entry occupies 38 stream bits, so an alphabet the remaining
  // payload cannot hold is corrupt; reject it before the allocation (a bad
  // u32 can claim 4G entries).
  require_format(alpha_size <= br.remaining() / 38, "huffman: alphabet exceeds payload");
  std::vector<CanonicalEntry> entries(alpha_size);
  for (auto& e : entries) {
    e.symbol = static_cast<std::uint32_t>(br.get(32));
    e.length = static_cast<unsigned>(br.get(6));
    require_format(e.length >= 1 && e.length <= kMaxCodeLen, "huffman: bad code length");
  }
  return entries;
}

}  // namespace

std::vector<unsigned> huffman_code_lengths(const std::vector<std::uint64_t>& freqs) {
  std::vector<unsigned> lengths(freqs.size(), 0);
  // Collect leaves.
  std::vector<Node> pool;
  std::vector<std::uint32_t> leaf_symbol_index(freqs.size(), 0);
  std::uint32_t nonzero = 0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] == 0) continue;
    leaf_symbol_index[i] = static_cast<std::uint32_t>(i);
    pool.push_back({freqs[i], -1, -1, static_cast<std::uint32_t>(i)});
    ++nonzero;
  }
  if (nonzero == 0) return lengths;
  if (nonzero == 1) {
    lengths[pool.front().symbol] = 1;
    return lengths;
  }
  // Min-heap of (freq, node index); tie-break on node index for determinism.
  using Item = std::pair<std::uint64_t, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (std::size_t i = 0; i < pool.size(); ++i) heap.push({pool[i].freq, static_cast<int>(i)});
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    pool.push_back({fa + fb, a, b, 0});
    heap.push({fa + fb, static_cast<int>(pool.size() - 1)});
  }
  std::vector<std::uint32_t> identity(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) identity[i] = static_cast<std::uint32_t>(i);
  assign_depths(pool, heap.top().second, 0, lengths, identity);
  return lengths;
}

double shannon_entropy_bits(const std::vector<std::uint64_t>& freqs) {
  std::uint64_t total = 0;
  for (const auto f : freqs) total += f;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto f : freqs) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<std::uint8_t> huffman_encode(const std::vector<std::uint32_t>& symbols) {
  // Dense (radix) histogram over the bounded quantizer alphabet, sparse-map
  // fallback for wide alphabets — identical counts, in symbol order, to the
  // old std::map frequency pass.
  const FreqTable ft = count_freqs(symbols.data(), symbols.size());
  const auto entries = entries_for(ft);
  const EncodeTable table(entries);

  BitWriter bw;
  bw.reserve_bits(128 + 38 * static_cast<std::uint64_t>(entries.size()) +
                  table.payload_bits(ft));
  bw.put(kMagic, 32);
  bw.put(symbols.size(), 64);
  bw.put(entries.size(), 32);
  for (const auto& e : entries) {
    bw.put(e.symbol, 32);
    bw.put(e.length, 6);
  }
  table.encode_all(bw, symbols.data(), symbols.size());
  return bw.finish();
}

std::vector<std::uint8_t> huffman_encode_reference(const std::vector<std::uint32_t>& symbols) {
  std::map<std::uint32_t, std::uint64_t> freq_map;
  for (const auto s : symbols) ++freq_map[s];
  FreqTable ft;
  for (const auto& [sym, f] : freq_map) {
    ft.alphabet.push_back(sym);
    ft.freqs.push_back(f);
  }
  const auto entries = entries_for(ft);
  // MSB-first bit-at-a-time emission from the canonical codes — maximally
  // independent of the table-driven path it is the oracle for.
  std::map<std::uint32_t, CanonicalEntry> by_symbol;
  for (const auto& e : entries) by_symbol[e.symbol] = e;
  BitWriter bw;
  bw.put(kMagic, 32);
  bw.put(symbols.size(), 64);
  bw.put(entries.size(), 32);
  for (const auto& e : entries) {
    bw.put(e.symbol, 32);
    bw.put(e.length, 6);
  }
  for (const auto s : symbols) {
    const CanonicalEntry& e = by_symbol.at(s);
    for (unsigned b = e.length; b-- > 0;) bw.put_bit(((e.code >> b) & 1u) != 0);
  }
  return bw.finish();
}

std::vector<std::uint8_t> huffman_encode_chunked(const std::vector<std::uint32_t>& symbols,
                                                 ThreadPool* pool,
                                                 std::size_t chunk_symbols) {
  if (chunk_symbols == 0) chunk_symbols = kDefaultChunkSymbols;
  const std::size_t n_chunks =
      symbols.empty() ? 0 : (symbols.size() + chunk_symbols - 1) / chunk_symbols;

  // Global histogram in one dense counting pass. The old per-chunk
  // std::map partials merged to the same counts for any thread count; a
  // single serial pass is both faster than the parallel map builds were
  // and trivially thread-count-independent.
  const FreqTable ft = count_freqs(symbols.data(), symbols.size());
  const auto entries = entries_for(ft);
  const EncodeTable table(entries);

  // Chunk payloads, each byte-aligned (BitWriter::finish pads), encoded in
  // parallel with the shared codebook. The writer (and its word storage)
  // is reused across each worker's chunks.
  std::vector<std::vector<std::uint8_t>> payloads(n_chunks);
  parallel_for(pool, n_chunks, [&](std::size_t lo, std::size_t hi) {
    BitWriter bw;
    for (std::size_t c = lo; c < hi; ++c) {
      bw.clear();
      const std::size_t begin = c * chunk_symbols;
      const std::size_t end = std::min(begin + chunk_symbols, symbols.size());
      table.encode_all(bw, symbols.data() + begin, end - begin);
      payloads[c] = bw.finish();
    }
  }, /*min_grain=*/1);

  BitWriter header;
  header.put(kChunkedMagic, 32);
  header.put(symbols.size(), 64);
  header.put(chunk_symbols, 32);
  header.put(n_chunks, 32);
  header.put(entries.size(), 32);
  for (const auto& e : entries) {
    header.put(e.symbol, 32);
    header.put(e.length, 6);
  }
  std::vector<std::uint8_t> out = header.finish();
  std::size_t total_payload = 0;
  for (const auto& p : payloads) total_payload += p.size();
  out.reserve(out.size() + 4 * n_chunks + total_payload);
  for (const auto& p : payloads) {
    const auto len = static_cast<std::uint32_t>(p.size());
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  for (const auto& p : payloads) out.insert(out.end(), p.begin(), p.end());
  return out;
}

bool is_chunked_huffman(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 4) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  return magic == kChunkedMagic;
}

std::vector<std::uint32_t> huffman_decode_chunked(const std::vector<std::uint8_t>& bytes,
                                                  ThreadPool* pool) {
  BitReader br(bytes);
  require_format(br.get(32) == kChunkedMagic, "huffman-chunked: bad magic");
  const std::uint64_t count = br.get(64);
  const std::size_t chunk_symbols = static_cast<std::size_t>(br.get(32));
  const std::size_t n_chunks = static_cast<std::size_t>(br.get(32));
  const auto alpha_size = static_cast<std::uint32_t>(br.get(32));
  require_format(count == 0 || alpha_size > 0, "huffman-chunked: empty alphabet");
  require_format(chunk_symbols > 0 || (n_chunks == 0 && count == 0),
                 "huffman-chunked: zero chunk size");
  // Overflow-free chunk-count check (count + chunk_symbols - 1 wraps for a
  // corrupted count near 2^64), plus a payload bound on count before the
  // output allocation: every symbol costs at least one payload bit.
  const std::size_t want_chunks =
      chunk_symbols == 0 ? 0
                         : static_cast<std::size_t>(count / chunk_symbols +
                                                    (count % chunk_symbols != 0 ? 1 : 0));
  require_format(n_chunks == want_chunks, "huffman-chunked: chunk count mismatch");
  require_format(count <= 8 * static_cast<std::uint64_t>(bytes.size()),
                 "huffman-chunked: symbol count exceeds payload");
  const DecodeTable table(read_entries(br, alpha_size));

  std::size_t pos = static_cast<std::size_t>((br.position() + 7) / 8);
  struct ChunkMeta {
    std::size_t offset, len;
  };
  // Each chunk costs a 4-byte table entry in the remaining bytes.
  require_format(n_chunks <= (bytes.size() - pos) / 4,
                 "huffman-chunked: chunk count exceeds payload");
  std::vector<ChunkMeta> metas(n_chunks);
  for (auto& m : metas) {
    require_format(pos + 4 <= bytes.size(), "huffman-chunked: truncated chunk table");
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    m.len = len;
  }
  for (auto& m : metas) {
    m.offset = pos;
    pos += m.len;
    require_format(pos <= bytes.size(), "huffman-chunked: chunk overruns buffer");
  }

  std::vector<std::uint32_t> out(count);
  parallel_for(pool, n_chunks, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      const std::uint64_t begin = static_cast<std::uint64_t>(c) * chunk_symbols;
      const std::uint64_t n = std::min<std::uint64_t>(chunk_symbols, count - begin);
      BitReader chunk_br(bytes.data() + metas[c].offset, metas[c].len);
      table.decode_into(chunk_br, out.data() + begin, n);
    }
  }, /*min_grain=*/1);
  return out;
}

std::vector<std::uint32_t> huffman_decode(const std::vector<std::uint8_t>& bytes,
                                          ThreadPool* pool) {
  if (is_chunked_huffman(bytes)) return huffman_decode_chunked(bytes, pool);
  BitReader br(bytes);
  require_format(br.get(32) == kMagic, "huffman: bad magic");
  const std::uint64_t count = br.get(64);
  const auto alpha_size = static_cast<std::uint32_t>(br.get(32));
  require_format(count == 0 || alpha_size > 0, "huffman: empty alphabet with nonzero count");
  const DecodeTable table(read_entries(br, alpha_size));
  require_format(count <= br.remaining(), "huffman: symbol count exceeds payload");
  std::vector<std::uint32_t> out(count);
  table.decode_into(br, out.data(), count);
  return out;
}

std::vector<std::uint32_t> huffman_decode_reference(const std::vector<std::uint8_t>& bytes) {
  if (is_chunked_huffman(bytes)) {
    // Re-parse the chunked container serially with the canonical decoder.
    BitReader br(bytes);
    require_format(br.get(32) == kChunkedMagic, "huffman-chunked: bad magic");
    const std::uint64_t count = br.get(64);
    const std::size_t chunk_symbols = static_cast<std::size_t>(br.get(32));
    const std::size_t n_chunks = static_cast<std::size_t>(br.get(32));
    const auto alpha_size = static_cast<std::uint32_t>(br.get(32));
    require_format(count == 0 || alpha_size > 0, "huffman-chunked: empty alphabet");
    require_format(chunk_symbols > 0 || (n_chunks == 0 && count == 0),
                   "huffman-chunked: zero chunk size");
    const std::size_t want_chunks =
        chunk_symbols == 0 ? 0
                           : static_cast<std::size_t>(count / chunk_symbols +
                                                      (count % chunk_symbols != 0 ? 1 : 0));
    require_format(n_chunks == want_chunks, "huffman-chunked: chunk count mismatch");
    require_format(count <= 8 * static_cast<std::uint64_t>(bytes.size()),
                   "huffman-chunked: symbol count exceeds payload");
    const DecodeTable table(read_entries(br, alpha_size));
    std::size_t pos = static_cast<std::size_t>((br.position() + 7) / 8);
    require_format(n_chunks <= (bytes.size() - pos) / 4,
                   "huffman-chunked: chunk count exceeds payload");
    std::vector<std::size_t> lens(n_chunks);
    for (auto& len : lens) {
      require_format(pos + 4 <= bytes.size(), "huffman-chunked: truncated chunk table");
      std::uint32_t l = 0;
      for (int i = 0; i < 4; ++i) l |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
      len = l;
    }
    std::vector<std::uint32_t> out(count);
    std::uint64_t begin = 0;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      require_format(pos + lens[c] <= bytes.size(), "huffman-chunked: chunk overruns buffer");
      const std::uint64_t n = std::min<std::uint64_t>(chunk_symbols, count - begin);
      BitReader chunk_br(bytes.data() + pos, lens[c]);
      table.decode_into_reference(chunk_br, out.data() + begin, n);
      pos += lens[c];
      begin += n;
    }
    return out;
  }
  BitReader br(bytes);
  require_format(br.get(32) == kMagic, "huffman: bad magic");
  const std::uint64_t count = br.get(64);
  const auto alpha_size = static_cast<std::uint32_t>(br.get(32));
  require_format(count == 0 || alpha_size > 0, "huffman: empty alphabet with nonzero count");
  const DecodeTable table(read_entries(br, alpha_size));
  require_format(count <= br.remaining(), "huffman: symbol count exceeds payload");
  std::vector<std::uint32_t> out(count);
  table.decode_into_reference(br, out.data(), count);
  return out;
}

}  // namespace cosmo
