#include "codec/fpc.hpp"

#include <cstring>

#include "codec/bitstream.hpp"
#include "common/error.hpp"

namespace cosmo {

namespace {

constexpr std::uint32_t kMagic = 0x46504331;  // "FPC1"
constexpr std::size_t kTableBits = 14;
constexpr std::size_t kTableSize = 1u << kTableBits;

/// FCM: predicts the next value from a hash of recent values.
/// DFCM: predicts the next delta from a hash of recent deltas.
struct Predictors {
  std::vector<std::uint32_t> fcm_table = std::vector<std::uint32_t>(kTableSize, 0);
  std::vector<std::uint32_t> dfcm_table = std::vector<std::uint32_t>(kTableSize, 0);
  std::size_t fcm_hash = 0;
  std::size_t dfcm_hash = 0;
  std::uint32_t last = 0;

  std::uint32_t fcm_predict() const { return fcm_table[fcm_hash]; }
  std::uint32_t dfcm_predict() const { return dfcm_table[dfcm_hash] + last; }

  void update(std::uint32_t actual) {
    fcm_table[fcm_hash] = actual;
    fcm_hash = ((fcm_hash << 6) ^ (actual >> 18)) & (kTableSize - 1);
    const std::uint32_t delta = actual - last;
    dfcm_table[dfcm_hash] = delta;
    dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 18)) & (kTableSize - 1);
    last = actual;
  }
};

unsigned leading_zero_bytes(std::uint32_t x) {
  if (x == 0) return 4;
  unsigned n = 0;
  while ((x & 0xFF000000u) == 0) {
    x <<= 8;
    ++n;
  }
  return n;
}

}  // namespace

std::vector<std::uint8_t> fpc_encode(std::span<const float> values) {
  BitWriter bw;
  bw.put(kMagic, 32);
  bw.put(values.size(), 64);

  Predictors pred;
  for (const float v : values) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    const std::uint32_t fcm_xor = bits ^ pred.fcm_predict();
    const std::uint32_t dfcm_xor = bits ^ pred.dfcm_predict();
    // Pick the predictor whose XOR has more leading zero bytes.
    const bool use_dfcm = leading_zero_bytes(dfcm_xor) > leading_zero_bytes(fcm_xor);
    const std::uint32_t residual = use_dfcm ? dfcm_xor : fcm_xor;
    const unsigned lzb = leading_zero_bytes(residual);
    bw.put_bit(use_dfcm);
    bw.put(lzb, 3);  // 0..4 leading zero bytes
    if (lzb < 4) {
      bw.put(residual, (4 - lzb) * 8);
    }
    pred.update(bits);
  }
  return bw.finish();
}

std::vector<float> fpc_decode(std::span<const std::uint8_t> bytes) {
  BitReader br(bytes.data(), bytes.size());
  require_format(br.get(32) == kMagic, "fpc: bad magic");
  const std::uint64_t count = br.get(64);
  // Every value costs at least 4 payload bits (flag + leading-zero count),
  // so a count the remaining payload cannot hold is corrupt; reject it
  // before reserving the output.
  require_format(count <= br.remaining() / 4, "fpc: value count exceeds payload");

  Predictors pred;
  std::vector<float> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool use_dfcm = br.get_bit();
    const unsigned lzb = static_cast<unsigned>(br.get(3));
    require_format(lzb <= 4, "fpc: bad leading-zero count");
    const std::uint32_t residual =
        lzb < 4 ? static_cast<std::uint32_t>(br.get((4 - lzb) * 8)) : 0;
    const std::uint32_t prediction = use_dfcm ? pred.dfcm_predict() : pred.fcm_predict();
    const std::uint32_t bits = prediction ^ residual;
    float v;
    std::memcpy(&v, &bits, 4);
    out.push_back(v);
    pred.update(bits);
  }
  return out;
}

}  // namespace cosmo
