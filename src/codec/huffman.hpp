/// \file huffman.hpp
/// \brief Canonical Huffman coder over 32-bit symbols.
///
/// This is the entropy-coding stage of the SZ pipeline ("a customized
/// Huffman coding", paper Section II-A). The alphabet is the set of
/// quantization codes actually present in the data, so symbols are sparse
/// 32-bit integers rather than bytes. Codes are canonicalized so the
/// header only stores (symbol, code length) pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/bitstream.hpp"

namespace cosmo {

/// Encodes \p symbols into a self-describing byte buffer
/// (header: alphabet + code lengths; payload: bit-packed codes).
std::vector<std::uint8_t> huffman_encode(const std::vector<std::uint32_t>& symbols);

/// Decodes a buffer produced by huffman_encode(). Throws FormatError on
/// malformed input.
std::vector<std::uint32_t> huffman_decode(const std::vector<std::uint8_t>& bytes);

/// Computes the per-symbol canonical code lengths for a frequency table
/// (exposed for testing and for entropy estimation). Returned parallel to
/// \p freqs; zero-frequency symbols get length 0.
std::vector<unsigned> huffman_code_lengths(const std::vector<std::uint64_t>& freqs);

/// Shannon entropy (bits/symbol) of a frequency table; the lower bound the
/// Huffman stage approaches. Used by tests and the rate model.
double shannon_entropy_bits(const std::vector<std::uint64_t>& freqs);

}  // namespace cosmo
