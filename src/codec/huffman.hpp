/// \file huffman.hpp
/// \brief Canonical Huffman coder over 32-bit symbols.
///
/// This is the entropy-coding stage of the SZ pipeline ("a customized
/// Huffman coding", paper Section II-A). The alphabet is the set of
/// quantization codes actually present in the data, so symbols are sparse
/// 32-bit integers rather than bytes. Codes are canonicalized so the
/// header only stores (symbol, code length) pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/bitstream.hpp"
#include "common/thread_pool.hpp"

namespace cosmo {

/// Encodes \p symbols into a self-describing byte buffer
/// (header: alphabet + code lengths; payload: bit-packed codes).
std::vector<std::uint8_t> huffman_encode(const std::vector<std::uint32_t>& symbols);

/// Decodes a buffer produced by huffman_encode() or
/// huffman_encode_chunked() (dispatches on the magic). Chunked containers
/// decode chunk-parallel on \p pool; single-stream buffers are serial
/// regardless. Throws FormatError on malformed input.
std::vector<std::uint32_t> huffman_decode(const std::vector<std::uint8_t>& bytes,
                                          ThreadPool* pool = nullptr);

/// Decodes with the bit-at-a-time canonical fallback only (no direct-lookup
/// table, no chunk parallelism). Exposed so tests can pin the fast path to
/// the reference path on the same stream; not a production entry point.
std::vector<std::uint32_t> huffman_decode_reference(const std::vector<std::uint8_t>& bytes);

/// Encodes with the reference pipeline (std::map histogram, per-symbol
/// MSB-first bit-at-a-time emission) — the byte-identity oracle for the
/// table-driven huffman_encode() fast path; not a production entry point.
std::vector<std::uint8_t> huffman_encode_reference(const std::vector<std::uint32_t>& symbols);

/// Chunked container: one codebook built from the global histogram, payload
/// split into byte-aligned chunks of \p chunk_symbols symbols (0 selects
/// the default, 1<<18). Both directions parallelize over chunks on \p pool;
/// the chunk geometry is fixed by chunk_symbols — never by the pool size —
/// so the stream is byte-identical for any thread count (the cuSZ+-style
/// coarse-grained coding pass).
std::vector<std::uint8_t> huffman_encode_chunked(const std::vector<std::uint32_t>& symbols,
                                                 ThreadPool* pool = nullptr,
                                                 std::size_t chunk_symbols = 0);

/// True when \p bytes starts with the chunked-container magic.
bool is_chunked_huffman(const std::vector<std::uint8_t>& bytes);

/// Decodes a huffman_encode_chunked() container, chunk-parallel on \p pool.
std::vector<std::uint32_t> huffman_decode_chunked(const std::vector<std::uint8_t>& bytes,
                                                  ThreadPool* pool = nullptr);

/// Computes the per-symbol canonical code lengths for a frequency table
/// (exposed for testing and for entropy estimation). Returned parallel to
/// \p freqs; zero-frequency symbols get length 0.
std::vector<unsigned> huffman_code_lengths(const std::vector<std::uint64_t>& freqs);

/// Shannon entropy (bits/symbol) of a frequency table; the lower bound the
/// Huffman stage approaches. Used by tests and the rate model.
double shannon_entropy_bits(const std::vector<std::uint64_t>& freqs);

}  // namespace cosmo
