/// \file rle.hpp
/// \brief Byte-oriented run-length coding.
///
/// Used as a cheap pre-pass before LZSS on highly repetitive streams (e.g.
/// the zero-heavy unpredictable-data section SZ emits at tight bounds).
#pragma once

#include <cstdint>
#include <vector>

namespace cosmo {

/// Encodes runs as (0xFF, count, byte) triples; literals that equal the
/// escape byte are encoded as a run of length 1.
std::vector<std::uint8_t> rle_encode(const std::vector<std::uint8_t>& input);

/// Inverse of rle_encode(); throws FormatError on truncated input.
std::vector<std::uint8_t> rle_decode(const std::vector<std::uint8_t>& input);

}  // namespace cosmo
