/// \file bitstream.hpp
/// \brief Bit-granular writer/reader used by the Huffman coder and the
/// ZFP bit-plane embedded coder.
///
/// Bits are packed LSB-first into 64-bit words, matching the reference ZFP
/// stream convention so block payload sizes are directly comparable.
///
/// The reader keeps a 64-bit refill buffer so the hot paths (`get`,
/// `get_bit`, `peek`, `skip`) touch memory one word at a time instead of
/// one byte per bit, and bounds checks happen once per refill rather than
/// once per bit. `peek`/`skip` are the primitives behind the table-driven
/// Huffman decoder and the batched ZFP group-test scans (see
/// docs/architecture.md, "Single-core decode fast paths"). Exact-bits
/// semantics are unchanged from the byte-at-a-time implementation: the
/// writer emits the same bytes for the same put() sequence, and the reader
/// returns the same values and throws FormatError at the same positions.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace cosmo {

/// Append-only bit writer.
///
/// Encode-side fast paths (see docs/architecture.md, "Encode fast paths"):
/// `put_pair` fuses the two-field token writes the LZSS and Huffman
/// encoders do (flag + payload, code + code) into a single masked append,
/// and `reserve_bits` pre-sizes the word storage so a hot encode loop
/// never reallocates mid-stream. Both are pure conveniences over `put`:
/// LSB-first packing is associative, so the emitted bytes are identical
/// to the equivalent sequence of single `put` calls.
class BitWriter {
 public:
  /// Appends the low \p nbits bits of \p value (0 <= nbits <= 64).
  void put(std::uint64_t value, unsigned nbits) {
    require(nbits <= 64, "BitWriter::put: nbits > 64");
    if (nbits == 0) return;
    if (nbits < 64) value &= (1ull << nbits) - 1;
    cur_ |= value << cur_bits_;
    const unsigned room = 64 - cur_bits_;
    if (nbits >= room) {
      words_.push_back(cur_);
      // Remaining high bits of value (safe: room >= 1, so shift < 64 unless
      // nbits == room == 64 where value >> 64 would be UB).
      cur_ = room < 64 ? (value >> room) : 0;
      cur_bits_ = nbits - room;
    } else {
      cur_bits_ += nbits;
    }
    bit_count_ += nbits;
  }

  /// Appends two fields in order — the low \p nbits_a bits of \p value_a,
  /// then the low \p nbits_b bits of \p value_b. When the pair fits a word
  /// (the token-shaped writes: LZSS flag+token, Huffman code+code) the two
  /// appends collapse into one masked put; the wide case falls back to two.
  void put_pair(std::uint64_t value_a, unsigned nbits_a, std::uint64_t value_b,
                unsigned nbits_b) {
    if (nbits_a + nbits_b <= 64 && nbits_a < 64) {
      value_a &= (~0ull >> 1) >> (63 - nbits_a);  // nbits_a-wide mask, 0..63 safe
      put(value_a | (value_b << nbits_a), nbits_a + nbits_b);
    } else {
      put(value_a, nbits_a);
      put(value_b, nbits_b);
    }
  }

  /// Reserves word storage for \p nbits more bits so subsequent puts in a
  /// hot loop never grow the vector. Content and bit count are unchanged.
  void reserve_bits(std::uint64_t nbits) {
    words_.reserve(words_.size() + static_cast<std::size_t>(nbits / 64) + 2);
  }

  /// Appends a single bit (branch-light specialization of put(bit, 1)).
  void put_bit(bool bit) {
    cur_ |= static_cast<std::uint64_t>(bit) << cur_bits_;
    if (++cur_bits_ == 64) {
      words_.push_back(cur_);
      cur_ = 0;
      cur_bits_ = 0;
    }
    ++bit_count_;
  }

  class Appender;

  /// Bit-level concatenation of another writer's content (the other writer
  /// is unchanged). Concatenation is associative, so encoding ranges into
  /// private writers and appending them in range order reproduces the
  /// single-writer stream bit for bit — the mechanism behind the
  /// thread-count-independent parallel codec paths.
  void append(const BitWriter& other);

  /// Total bits written so far.
  [[nodiscard]] std::uint64_t bit_count() const { return bit_count_; }

  /// Pads to a whole byte with zero bits and returns the byte buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

  /// Clears all state.
  void clear();

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t cur_ = 0;
  unsigned cur_bits_ = 0;
  std::uint64_t bit_count_ = 0;
};

/// Register-resident append cursor over a BitWriter — the fast lane for
/// encode loops that emit millions of small tokens (the LZSS encoder).
///
/// put() keeps the accumulator word and fill count in locals, so between
/// word flushes the loop never round-trips writer state through memory;
/// the packing itself is LSB-first into 64-bit words, identical bit for
/// bit to the equivalent BitWriter::put calls. While an Appender is live
/// the borrowed writer must not be used directly; flush() (or the
/// destructor) writes the tail state back, after which the writer resumes
/// as if it had performed every put itself.
///
/// Caller contract (unchecked, unlike BitWriter::put): 0 < nbits <= 64 and
/// all bits of \p value at position >= nbits are zero.
class BitWriter::Appender {
 public:
  explicit Appender(BitWriter& bw)
      : bw_(bw), cur_(bw.cur_), cur_bits_(bw.cur_bits_) {}
  Appender(const Appender&) = delete;
  Appender& operator=(const Appender&) = delete;
  ~Appender() { flush(); }

  /// Appends the \p nbits-bit value (pre-masked; see class contract).
  void put(std::uint64_t value, unsigned nbits) {
    cur_ |= value << cur_bits_;
    cur_bits_ += nbits;
    if (cur_bits_ >= 64) {
      bw_.words_.push_back(cur_);
      cur_bits_ -= 64;
      // Remaining high bits of value; cur_bits_ == 0 means the value ended
      // exactly on the word boundary (shift by 64 - old fill would be UB).
      cur_ = cur_bits_ != 0 ? value >> (nbits - cur_bits_) : 0;
    }
  }

  /// Writes the local accumulator state back into the BitWriter. Safe to
  /// call more than once; put() may continue after a flush.
  void flush() {
    bw_.cur_ = cur_;
    bw_.cur_bits_ = cur_bits_;
    bw_.bit_count_ = bw_.words_.size() * 64 + cur_bits_;
  }

 private:
  BitWriter& bw_;
  std::uint64_t cur_;
  unsigned cur_bits_;
};

/// Sequential bit reader over a byte buffer produced by BitWriter.
///
/// Invariant: `buf_` holds the next `buf_bits_` unread bits LSB-first, and
/// every bit of `buf_` at position >= `buf_bits_` is zero — so `peek`
/// naturally zero-pads past the end of the stream without ever reading out
/// of bounds, and a table lookup on the peeked window is always memory-safe.
class BitReader {
 public:
  /// Widest window `peek`/`skip` support. 56 (not 64) so a refill can
  /// always merge whole bytes into the buffer.
  static constexpr unsigned kMaxPeekBits = 56;

  BitReader(const std::uint8_t* data, std::size_t size_bytes)
      : data_(data),
        size_bytes_(size_bytes),
        size_bits_(static_cast<std::uint64_t>(size_bytes) * 8) {}
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size()) {}
  /// Deleted: a temporary's storage would dangle after construction.
  explicit BitReader(std::vector<std::uint8_t>&&) = delete;

  /// Reads \p nbits bits (0 <= nbits <= 64); throws FormatError past the end.
  std::uint64_t get(unsigned nbits) {
    if (nbits - 1 < kMaxPeekBits) {  // 1..56; 0 wraps around and goes slow
      refill();
      require_format(nbits <= buf_bits_, "BitReader: read past end of stream");
      const std::uint64_t out = buf_ & (~0ull >> (64 - nbits));
      buf_ >>= nbits;
      buf_bits_ -= nbits;
      return out;
    }
    return get_slow(nbits);
  }

  /// Reads one bit.
  bool get_bit() {
    if (buf_bits_ == 0) {
      refill();
      require_format(buf_bits_ != 0, "BitReader: read past end of stream");
    }
    const bool bit = (buf_ & 1u) != 0;
    buf_ >>= 1;
    --buf_bits_;
    return bit;
  }

  /// Returns the next \p nbits bits (1 <= nbits <= kMaxPeekBits) without
  /// consuming them. Past the end of the stream the missing bits read as
  /// zero; no out-of-bounds memory access occurs. Pair with skip(), which
  /// does enforce the stream bound.
  std::uint64_t peek(unsigned nbits) {
    require(nbits - 1 < kMaxPeekBits, "BitReader::peek: nbits must be 1..56");
    refill();
    return buf_ & (~0ull >> (64 - nbits));
  }

  /// Consumes \p nbits bits (<= kMaxPeekBits); throws FormatError past the
  /// end of the stream.
  void skip(unsigned nbits) {
    require(nbits <= kMaxPeekBits, "BitReader::skip: nbits > 56");
    refill();
    require_format(nbits <= buf_bits_, "BitReader: read past end of stream");
    buf_ >>= nbits;
    buf_bits_ -= nbits;
  }

  /// Bits consumed so far.
  [[nodiscard]] std::uint64_t position() const {
    return next_byte_ * 8 - buf_bits_;
  }

  /// Bits remaining.
  [[nodiscard]] std::uint64_t remaining() const { return size_bits_ - position(); }

  /// Repositions the read cursor (bit offset from the start).
  void seek(std::uint64_t bit_pos);

 private:
  /// Tops the refill buffer up to at least kMaxPeekBits valid bits (fewer
  /// only near the end of the stream). One 8-byte load on the interior; a
  /// byte loop over the (< 8 byte) tail.
  void refill() {
    if (buf_bits_ >= kMaxPeekBits) return;
    if (next_byte_ + 8 <= size_bytes_) {
      std::uint64_t w;
      std::memcpy(&w, data_ + next_byte_, 8);
      const unsigned merged_bytes = (63 - buf_bits_) >> 3;
      const unsigned merged_bits = merged_bytes * 8;  // 8..56
      buf_ |= (w & (~0ull >> (64 - merged_bits))) << buf_bits_;
      next_byte_ += merged_bytes;
      buf_bits_ += merged_bits;  // now 56..63
      return;
    }
    while (buf_bits_ <= 56 && next_byte_ < size_bytes_) {
      buf_ |= static_cast<std::uint64_t>(data_[next_byte_++]) << buf_bits_;
      buf_bits_ += 8;
    }
  }

  std::uint64_t get_slow(unsigned nbits);

  const std::uint8_t* data_;
  std::uint64_t size_bytes_;
  std::uint64_t size_bits_;
  std::uint64_t next_byte_ = 0;  ///< next byte to load into the buffer
  std::uint64_t buf_ = 0;        ///< unread bits, LSB-first
  unsigned buf_bits_ = 0;        ///< valid bit count in buf_
};

}  // namespace cosmo
