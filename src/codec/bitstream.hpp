/// \file bitstream.hpp
/// \brief Bit-granular writer/reader used by the Huffman coder and the
/// ZFP bit-plane embedded coder.
///
/// Bits are packed LSB-first into 64-bit words, matching the reference ZFP
/// stream convention so block payload sizes are directly comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace cosmo {

/// Append-only bit writer.
class BitWriter {
 public:
  /// Appends the low \p nbits bits of \p value (0 <= nbits <= 64).
  void put(std::uint64_t value, unsigned nbits);

  /// Appends a single bit.
  void put_bit(bool bit) { put(bit ? 1u : 0u, 1); }

  /// Bit-level concatenation of another writer's content (the other writer
  /// is unchanged). Concatenation is associative, so encoding ranges into
  /// private writers and appending them in range order reproduces the
  /// single-writer stream bit for bit — the mechanism behind the
  /// thread-count-independent parallel codec paths.
  void append(const BitWriter& other);

  /// Total bits written so far.
  [[nodiscard]] std::uint64_t bit_count() const { return bit_count_; }

  /// Pads to a whole byte with zero bits and returns the byte buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

  /// Clears all state.
  void clear();

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t cur_ = 0;
  unsigned cur_bits_ = 0;
  std::uint64_t bit_count_ = 0;
};

/// Sequential bit reader over a byte buffer produced by BitWriter.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size_bytes)
      : data_(data), size_bits_(static_cast<std::uint64_t>(size_bytes) * 8) {}
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size()) {}
  /// Deleted: a temporary's storage would dangle after construction.
  explicit BitReader(std::vector<std::uint8_t>&&) = delete;

  /// Reads \p nbits bits (0 <= nbits <= 64); throws FormatError past the end.
  std::uint64_t get(unsigned nbits);

  /// Reads one bit.
  bool get_bit() { return get(1) != 0; }

  /// Bits consumed so far.
  [[nodiscard]] std::uint64_t position() const { return pos_; }

  /// Bits remaining.
  [[nodiscard]] std::uint64_t remaining() const { return size_bits_ - pos_; }

  /// Repositions the read cursor (bit offset from the start).
  void seek(std::uint64_t bit_pos);

 private:
  const std::uint8_t* data_;
  std::uint64_t size_bits_;
  std::uint64_t pos_ = 0;
};

}  // namespace cosmo
