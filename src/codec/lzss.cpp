#include "codec/lzss.hpp"

#include <array>
#include <cstring>

#include "codec/bitstream.hpp"
#include "common/error.hpp"

namespace cosmo {

namespace {

constexpr std::uint32_t kMagic = 0x4C5A5353;  // "LZSS"
constexpr unsigned kWindowBits = 16;          // 64 KiB window
constexpr unsigned kLengthBits = 8;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + (1u << kLengthBits) - 1;
constexpr std::size_t kWindow = 1u << kWindowBits;
constexpr std::size_t kHashSize = 1u << 15;
constexpr int kMaxChain = 32;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t x;
  std::memcpy(&x, p, 4);
  return (x * 2654435761u) >> (32 - 15);
}

}  // namespace

std::vector<std::uint8_t> lzss_encode(const std::vector<std::uint8_t>& input) {
  BitWriter bw;
  bw.put(kMagic, 32);
  bw.put(input.size(), 64);

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  std::size_t i = 0;
  while (i < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= input.size()) {
      const std::uint32_t h = hash4(&input[i]);
      std::int64_t cand = head[h];
      int chain = 0;
      while (cand >= 0 && i - static_cast<std::size_t>(cand) <= kWindow &&
             chain < kMaxChain) {
        const std::size_t c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        const std::size_t max_len = std::min(kMaxMatch, input.size() - i);
        while (len < max_len && input[c + len] == input[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len == max_len) break;
        }
        cand = prev[c];
        ++chain;
      }
    }
    if (best_len >= kMinMatch) {
      bw.put_bit(true);
      bw.put(best_dist - 1, kWindowBits);
      bw.put(best_len - kMinMatch, kLengthBits);
      // Insert all covered positions into the hash chains.
      const std::size_t end = std::min(i + best_len, input.size() >= 4 ? input.size() - 3 : 0);
      for (std::size_t j = i; j < end; ++j) {
        const std::uint32_t h = hash4(&input[j]);
        prev[j] = head[h];
        head[h] = static_cast<std::int64_t>(j);
      }
      i += best_len;
    } else {
      bw.put_bit(false);
      bw.put(input[i], 8);
      if (i + 4 <= input.size()) {
        const std::uint32_t h = hash4(&input[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }
  }
  return bw.finish();
}

std::vector<std::uint8_t> lzss_decode(const std::vector<std::uint8_t>& input) {
  BitReader br(input);
  require_format(br.get(32) == kMagic, "lzss: bad magic");
  const std::uint64_t n = br.get(64);
  std::vector<std::uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    if (br.get_bit()) {
      const std::size_t dist = static_cast<std::size_t>(br.get(kWindowBits)) + 1;
      const std::size_t len = static_cast<std::size_t>(br.get(kLengthBits)) + kMinMatch;
      require_format(dist <= out.size(), "lzss: match distance past start");
      require_format(out.size() + len <= n, "lzss: match overruns declared size");
      const std::size_t start = out.size() - dist;
      for (std::size_t j = 0; j < len; ++j) out.push_back(out[start + j]);
    } else {
      out.push_back(static_cast<std::uint8_t>(br.get(8)));
    }
  }
  return out;
}

}  // namespace cosmo
