#include "codec/lzss.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <limits>

#include "codec/bitstream.hpp"
#include "common/error.hpp"
#include "common/scratch_arena.hpp"

namespace cosmo {

namespace {

constexpr std::uint32_t kMagic = 0x4C5A5353;         // "LZSS"
constexpr std::uint32_t kChunkedMagic = 0x4C5A5343;  // "LZSC"
constexpr unsigned kWindowBits = 16;                 // 64 KiB window
constexpr unsigned kLengthBits = 8;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + (1u << kLengthBits) - 1;
constexpr std::size_t kWindow = 1u << kWindowBits;
constexpr std::size_t kHashSize = 1u << 15;
constexpr int kMaxChain = 32;
constexpr std::size_t kDefaultChunkBytes = 1u << 20;

std::uint32_t hash_u32(std::uint32_t x) { return (x * 2654435761u) >> (32 - 15); }

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t x;
  std::memcpy(&x, p, 4);
  return hash_u32(x);
}

/// Match length between input[c..] and input[i..] capped at \p max_len,
/// comparing 8 bytes at a time: memcpy + XOR + countr_zero finds the first
/// differing byte without a per-byte loop. Reads stay in bounds because
/// c < i and the word loop only runs while i + len + 8 <= i + max_len
/// <= size. Returns exactly what the byte-at-a-time compare returned.
inline std::size_t match_length(const std::uint8_t* input, std::size_t c, std::size_t i,
                                std::size_t max_len) {
  std::size_t len = 0;
  while (len + 8 <= max_len) {
    std::uint64_t a, b;
    std::memcpy(&a, input + c + len, 8);
    std::memcpy(&b, input + i + len, 8);
    const std::uint64_t x = a ^ b;
    if (x != 0) return len + (static_cast<unsigned>(std::countr_zero(x)) >> 3);
    len += 8;
  }
  while (len < max_len && input[c + len] == input[i + len]) ++len;
  return len;
}

/// Single-stream encode over a raw byte range (the chunked container calls
/// this once per chunk, so each chunk's window never reaches outside it).
///
/// The fast path reproduces the reference encoder's stream byte for byte.
/// The argument that lets it restructure the search: the emitted token at
/// a position depends only on the *final* (best_len, best_dist) — and the
/// final best is always the earliest candidate (in chain order, capped at
/// kMaxChain visited) whose common prefix with the probe is maximal, with
/// a match emitted iff that maximum reaches kMinMatch. Intermediate
/// sub-kMinMatch "best" values the reference tracks can never change the
/// output, so candidates whose first four bytes differ from the probe's
/// (their prefix is < kMinMatch) are skipped without a compare. The
/// mechanics on top of that:
///  - each candidate is gated on one 32-bit compare of its first four
///    bytes; only gate survivors run the full match_length (8 bytes at a
///    time: memcpy + XOR + countr_zero). Skipped candidates still count
///    against kMaxChain, exactly like the reference walk;
///  - once a best of >= kMinMatch exists, a surviving candidate must also
///    match at offset best_len to beat it (in bounds: best_len < max_len
///    <= size - i inside the loop — a best_len == max_len match breaks
///    out);
///  - the walk exits on a single compare: cand < limit covers both the -1
///    sentinel and the out-of-window candidate (limit >= 0 always);
///  - tokens stream through a BitWriter::Appender, one fused pre-masked
///    append per token, with word storage reserved up front;
///  - the probe's hash reuses the four probe bytes already loaded for the
///    gate, and the literal-path insert reuses the head entry the search
///    already read (the search never writes the tables);
///  - the head/prev chain tables are 32-bit and leased from \p arena (when
///    given) so per-chunk runs reuse capacity instead of reallocating, and
///    prev is never pre-filled: entries are written at insert time before
///    any chain walk can read them.
std::vector<std::uint8_t> encode_range(const std::uint8_t* input, std::size_t size,
                                       ScratchArena* arena) {
  BitWriter bw;
  // Worst case is all literals: 9 bits per input byte + the 96-bit header.
  // One reserve up front, no growth in the loop.
  bw.reserve_bits(size * 9 + 96);

  // Positions fit int32: the chunked container caps ranges at chunk_bytes
  // and callers of the single-stream path are bounded by the container
  // formats (u32 chunk sizes). Guarded here so a hypothetical >2 GiB range
  // fails loudly instead of corrupting chains.
  require(size <= static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()),
          "lzss: range exceeds 2 GiB match-table limit");

  ScratchArena local_arena;
  if (arena == nullptr) arena = &local_arena;
  ArenaLease<std::int32_t> head_lease = arena->ints();
  ArenaLease<std::int32_t> prev_lease = arena->ints();
  head_lease->assign(kHashSize, -1);
  if (prev_lease->size() < size) prev_lease->resize(size);
  std::int32_t* const head = head_lease->data();
  std::int32_t* const prev = prev_lease->data();

  BitWriter::Appender ap(bw);
  ap.put(kMagic, 32);
  ap.put(size, 64);

  std::size_t i = 0;
  while (i < size) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    std::uint32_t h = 0;
    std::int32_t cand0 = -1;
    bool hashed = false;
    if (i + kMinMatch <= size) {
      std::uint32_t vi;
      std::memcpy(&vi, input + i, 4);
      h = hash_u32(vi);
      hashed = true;
      cand0 = head[h];
      // Overlap the next position's head load with this walk (pure hint;
      // no effect on the tables or the stream).
      if (i + 5 <= size) __builtin_prefetch(&head[hash4(&input[i + 1])], 1);
      const std::int32_t limit =
          i > kWindow ? static_cast<std::int32_t>(i - kWindow) : 0;
      std::int32_t cand = cand0;
      const std::size_t max_len = std::min(kMaxMatch, size - i);
      for (int chain = 0; chain < kMaxChain; ++chain) {
        if (cand < limit) break;
        const std::size_t c = static_cast<std::size_t>(cand);
        std::uint32_t vc;
        std::memcpy(&vc, input + c, 4);
        cand = prev[c];
        if (vc == vi &&
            (best_len < kMinMatch || input[c + best_len] == input[i + best_len])) {
          const std::size_t len = match_length(input, c, i, max_len);
          if (len > best_len) {
            best_len = len;
            best_dist = i - c;
            if (len == max_len) break;
          }
        }
      }
    }
    if (best_len >= kMinMatch) {
      // flag=1, dist-1 (16 bits), len-kMinMatch (8 bits) in one append.
      ap.put(1ull | ((best_dist - 1) << 1) |
                 ((best_len - kMinMatch) << (1 + kWindowBits)),
             1 + kWindowBits + kLengthBits);
      // Insert all covered positions into the hash chains; the first one
      // reuses the search's hash and head entry.
      const std::size_t end = std::min(i + best_len, size >= 4 ? size - 3 : 0);
      std::size_t j = i;
      if (j < end) {
        prev[j] = cand0;
        head[h] = static_cast<std::int32_t>(j);
        ++j;
      }
      for (; j < end; ++j) {
        const std::uint32_t h2 = hash4(&input[j]);
        prev[j] = head[h2];
        head[h2] = static_cast<std::int32_t>(j);
      }
      i += best_len;
    } else {
      ap.put(static_cast<std::uint64_t>(input[i]) << 1, 9);
      if (hashed) {
        prev[i] = cand0;
        head[h] = static_cast<std::int32_t>(i);
      }
      ++i;
    }
  }
  ap.flush();
  return bw.finish();
}

/// The pre-fast-path encoder, byte-at-a-time compares and per-field puts —
/// kept as the byte-identity oracle for the fast path (see
/// lzss_encode_reference()).
std::vector<std::uint8_t> encode_range_reference(const std::uint8_t* input, std::size_t size) {
  BitWriter bw;
  bw.put(kMagic, 32);
  bw.put(size, 64);

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(size, -1);

  std::size_t i = 0;
  while (i < size) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= size) {
      const std::uint32_t h = hash4(&input[i]);
      std::int64_t cand = head[h];
      int chain = 0;
      while (cand >= 0 && i - static_cast<std::size_t>(cand) <= kWindow &&
             chain < kMaxChain) {
        const std::size_t c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        const std::size_t max_len = std::min(kMaxMatch, size - i);
        while (len < max_len && input[c + len] == input[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len == max_len) break;
        }
        cand = prev[c];
        ++chain;
      }
    }
    if (best_len >= kMinMatch) {
      bw.put_bit(true);
      bw.put(best_dist - 1, kWindowBits);
      bw.put(best_len - kMinMatch, kLengthBits);
      // Insert all covered positions into the hash chains.
      const std::size_t end = std::min(i + best_len, size >= 4 ? size - 3 : 0);
      for (std::size_t j = i; j < end; ++j) {
        const std::uint32_t h = hash4(&input[j]);
        prev[j] = head[h];
        head[h] = static_cast<std::int64_t>(j);
      }
      i += best_len;
    } else {
      bw.put_bit(false);
      bw.put(input[i], 8);
      if (i + 4 <= size) {
        const std::uint32_t h = hash4(&input[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }
  }
  return bw.finish();
}

/// Single-stream decode into a caller-sized output range.
void decode_range(const std::uint8_t* input, std::size_t size, std::uint8_t* out,
                  std::size_t expected) {
  BitReader br(input, size);
  require_format(br.get(32) == kMagic, "lzss: bad magic");
  const std::uint64_t n = br.get(64);
  require_format(n == expected, "lzss: declared size mismatch");
  std::size_t produced = 0;
  while (produced < n) {
    if (br.get_bit()) {
      const std::size_t dist = static_cast<std::size_t>(br.get(kWindowBits)) + 1;
      const std::size_t len = static_cast<std::size_t>(br.get(kLengthBits)) + kMinMatch;
      require_format(dist <= produced, "lzss: match distance past start");
      require_format(produced + len <= n, "lzss: match overruns declared size");
      const std::size_t start = produced - dist;
      for (std::size_t j = 0; j < len; ++j) out[produced + j] = out[start + j];
      produced += len;
    } else {
      out[produced++] = static_cast<std::uint8_t>(br.get(8));
    }
  }
}

/// Largest output a payload of \p payload_bytes can legitimately declare:
/// the densest token is a match (25 bits for up to kMaxMatch bytes), so the
/// yield is bounded by kMaxMatch bytes per 25 payload bits. Used to reject
/// corrupted headers before the output allocation.
std::size_t max_declared_output(std::size_t payload_bytes) {
  return (payload_bytes * 8 / 25 + 1) * kMaxMatch;
}

}  // namespace

std::vector<std::uint8_t> lzss_encode(const std::vector<std::uint8_t>& input,
                                      ScratchArena* arena) {
  return encode_range(input.data(), input.size(), arena);
}

std::vector<std::uint8_t> lzss_encode_reference(const std::vector<std::uint8_t>& input) {
  return encode_range_reference(input.data(), input.size());
}

std::vector<std::uint8_t> lzss_decode(const std::vector<std::uint8_t>& input) {
  if (is_chunked_lzss(input)) return lzss_decode_chunked(input, nullptr);
  BitReader br(input);
  require_format(br.get(32) == kMagic, "lzss: bad magic");
  const std::uint64_t n = br.get(64);
  require_format(n <= max_declared_output(input.size()), "lzss: declared size exceeds payload");
  std::vector<std::uint8_t> out(n);
  decode_range(input.data(), input.size(), out.data(), n);
  return out;
}

std::vector<std::uint8_t> lzss_encode_chunked(const std::vector<std::uint8_t>& input,
                                              ThreadPool* pool, std::size_t chunk_bytes) {
  if (chunk_bytes == 0) chunk_bytes = kDefaultChunkBytes;
  const std::size_t n_chunks =
      input.empty() ? 0 : (input.size() + chunk_bytes - 1) / chunk_bytes;

  // Each chunk is an independent single-stream container; the geometry is
  // fixed by chunk_bytes, never the pool size, so the assembled buffer is
  // byte-identical for any thread count. Each worker range gets its own
  // arena (arenas are not thread-safe) so the head/prev chain tables are
  // allocated once per worker and reused across its chunks.
  std::vector<std::vector<std::uint8_t>> payloads(n_chunks);
  parallel_for(pool, n_chunks, [&](std::size_t lo, std::size_t hi) {
    ScratchArena arena;
    for (std::size_t c = lo; c < hi; ++c) {
      const std::size_t begin = c * chunk_bytes;
      const std::size_t end = std::min(begin + chunk_bytes, input.size());
      payloads[c] = encode_range(input.data() + begin, end - begin, &arena);
    }
  }, /*min_grain=*/1);

  BitWriter header;
  header.put(kChunkedMagic, 32);
  header.put(input.size(), 64);
  header.put(chunk_bytes, 32);
  header.put(n_chunks, 32);
  std::vector<std::uint8_t> out = header.finish();
  std::size_t total_payload = 0;
  for (const auto& p : payloads) total_payload += p.size();
  out.reserve(out.size() + 4 * n_chunks + total_payload);
  for (const auto& p : payloads) {
    const auto len = static_cast<std::uint32_t>(p.size());
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  for (const auto& p : payloads) out.insert(out.end(), p.begin(), p.end());
  return out;
}

bool is_chunked_lzss(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 4) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  return magic == kChunkedMagic;
}

std::vector<std::uint8_t> lzss_decode_chunked(const std::vector<std::uint8_t>& bytes,
                                              ThreadPool* pool) {
  BitReader br(bytes);
  require_format(br.get(32) == kChunkedMagic, "lzss-chunked: bad magic");
  const std::uint64_t total = br.get(64);
  const std::size_t chunk_bytes = static_cast<std::size_t>(br.get(32));
  const std::size_t n_chunks = static_cast<std::size_t>(br.get(32));
  require_format(chunk_bytes > 0 || n_chunks == 0, "lzss-chunked: zero chunk size");
  // Bound the declared output before allocating it, and compute the chunk
  // count without forming total + chunk_bytes - 1 (which wraps for a
  // corrupted total near 2^64).
  require_format(total <= max_declared_output(bytes.size()),
                 "lzss-chunked: declared size exceeds payload");
  const std::size_t want_chunks =
      chunk_bytes == 0 ? 0 : total / chunk_bytes + (total % chunk_bytes != 0 ? 1 : 0);
  require_format(n_chunks == want_chunks, "lzss-chunked: chunk count mismatch");

  std::size_t pos = static_cast<std::size_t>((br.position() + 7) / 8);
  // Each chunk costs a 4-byte table entry; reject counts the remaining
  // bytes cannot hold before sizing the table.
  require_format(n_chunks <= (bytes.size() - std::min(pos, bytes.size())) / 4,
                 "lzss-chunked: chunk count exceeds payload");
  struct ChunkMeta {
    std::size_t offset, len;
  };
  std::vector<ChunkMeta> metas(n_chunks);
  for (auto& m : metas) {
    require_format(pos + 4 <= bytes.size(), "lzss-chunked: truncated chunk table");
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    m.len = len;
  }
  for (auto& m : metas) {
    m.offset = pos;
    pos += m.len;
    require_format(pos <= bytes.size(), "lzss-chunked: chunk overruns buffer");
  }

  std::vector<std::uint8_t> out(total);
  parallel_for(pool, n_chunks, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      const std::size_t begin = c * chunk_bytes;
      const std::size_t expected = std::min(chunk_bytes, static_cast<std::size_t>(total) - begin);
      decode_range(bytes.data() + metas[c].offset, metas[c].len, out.data() + begin, expected);
    }
  }, /*min_grain=*/1);
  return out;
}

}  // namespace cosmo
