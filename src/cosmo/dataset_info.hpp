/// \file dataset_info.hpp
/// \brief Dataset descriptors reproducing paper Table II, plus helpers to
/// describe generated containers.
#pragma once

#include <string>
#include <vector>

#include "io/container.hpp"

namespace cosmo {

/// One row of a dataset description (per field).
struct FieldInfo {
  std::string name;
  std::string range;  ///< value range as the paper prints it
};

/// Table II row.
struct DatasetInfo {
  std::string name;
  std::string dimension;  ///< e.g. "1,073,726,359" or "512x512x512"
  std::string size;       ///< e.g. "38 GB"
  std::vector<FieldInfo> fields;
};

/// Paper Table II, HACC row (the original full-scale dataset).
DatasetInfo hacc_paper_info();

/// Paper Table II, Nyx row.
DatasetInfo nyx_paper_info();

/// Describes an actual generated container (dims, size, measured ranges).
DatasetInfo describe(const io::Container& c, const std::string& name);

/// Formats a DatasetInfo as an aligned text table (used by the Table II
/// bench binary).
std::string format_table(const std::vector<DatasetInfo>& rows);

}  // namespace cosmo
