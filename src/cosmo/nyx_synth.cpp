#include "cosmo/nyx_synth.hpp"

#include <algorithm>
#include <cmath>

#include "fft/fft.hpp"
#include "random/rng.hpp"

namespace cosmo {

namespace {

/// LambdaCDM-like template: rises as k^ns at large scales, turns over at the
/// knee and falls as k^(ns-4), qualitatively matching the matter spectrum.
double spectrum_template(double k, double ns, double knee) {
  if (k <= 0.0) return 0.0;
  const double x = k / knee;
  return std::pow(k, ns) / std::pow(1.0 + x * x, 2.0);
}

/// Wrapped integer frequency for FFT bin i of n.
double freq(std::size_t i, std::size_t n) {
  const auto s = static_cast<double>(i);
  const auto nn = static_cast<double>(n);
  return i <= n / 2 ? s : s - nn;
}

/// Generates a real GRF with the template spectrum: white noise ->
/// forward FFT -> sqrt(P(k)) filter -> inverse FFT. Normalized to unit
/// variance.
std::vector<float> gaussian_random_field(const Dims& dims, Rng& rng, double ns,
                                         double knee, double extra_k_power) {
  std::vector<cplx> grid(dims.count());
  for (auto& g : grid) g = cplx(rng.normal(), 0.0);
  fft_3d(grid, dims, /*inverse=*/false);
  for (std::size_t z = 0; z < dims.nz; ++z) {
    const double kz = freq(z, dims.nz);
    for (std::size_t y = 0; y < dims.ny; ++y) {
      const double ky = freq(y, dims.ny);
      for (std::size_t x = 0; x < dims.nx; ++x) {
        const double kx = freq(x, dims.nx);
        const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
        double amp = std::sqrt(spectrum_template(k, ns, knee));
        if (extra_k_power != 0.0 && k > 0.0) amp *= std::pow(k, extra_k_power);
        grid[dims.index(x, y, z)] *= amp;
      }
    }
  }
  grid[0] = cplx(0.0, 0.0);  // zero mean
  fft_3d(grid, dims, /*inverse=*/true);

  std::vector<float> out(dims.count());
  double var = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    out[i] = static_cast<float>(grid[i].real());
    var += grid[i].real() * grid[i].real();
  }
  var /= static_cast<double>(grid.size());
  const float norm = var > 0.0 ? static_cast<float>(1.0 / std::sqrt(var)) : 1.0f;
  for (auto& v : out) v *= norm;
  return out;
}

}  // namespace

Field generate_nyx_delta(const NyxConfig& config) {
  require(is_pow2(config.dim), "generate_nyx: dim must be a power of two");
  const Dims dims = Dims::d3(config.dim, config.dim, config.dim);
  Rng rng(config.seed);
  Field f("delta", dims,
          gaussian_random_field(dims, rng, config.spectral_index, config.knee, 0.0));
  return f;
}

io::Container generate_nyx(const NyxConfig& config) {
  require(is_pow2(config.dim), "generate_nyx: dim must be a power of two");
  const Dims dims = Dims::d3(config.dim, config.dim, config.dim);
  Rng rng(config.seed);

  // Two correlated density contrasts (baryons trace dark matter loosely).
  const auto delta_dm =
      gaussian_random_field(dims, rng, config.spectral_index, config.knee, 0.0);
  auto delta_b = delta_dm;
  {
    Rng noise = rng.split();
    const auto extra =
        gaussian_random_field(dims, noise, config.spectral_index, config.knee * 2.0, 0.0);
    for (std::size_t i = 0; i < delta_b.size(); ++i) {
      delta_b[i] = 0.9f * delta_b[i] + 0.35f * extra[i];
    }
  }

  io::Container out;
  const double sigma = config.sigma_delta;

  // Log-normal transform: rho = rho0 * exp(sigma * delta - sigma^2 / 2)
  // gives mean rho0 and the long upper tail Table II reports.
  auto lognormal = [&](const std::vector<float>& delta, double rho0, double cap) {
    std::vector<float> rho(delta.size());
    for (std::size_t i = 0; i < delta.size(); ++i) {
      const double v = rho0 * std::exp(sigma * delta[i] - sigma * sigma / 2.0);
      rho[i] = static_cast<float>(std::min(v, cap));
    }
    return rho;
  };

  {
    io::Variable v;
    v.field = Field(kNyxFieldNames[0], dims, lognormal(delta_b, 80.0, 1e5));
    v.attributes["units"] = "Msun/Mpc^3";
    v.attributes["range"] = "(0, 1e5)";
    out.variables.push_back(std::move(v));
  }
  {
    io::Variable v;
    v.field = Field(kNyxFieldNames[1], dims, lognormal(delta_dm, 40.0, 1e4));
    v.attributes["units"] = "Msun/Mpc^3";
    v.attributes["range"] = "(0, 1e4)";
    out.variables.push_back(std::move(v));
  }
  {
    // Temperature follows density adiabatically: T = T0 (rho/rho0)^gamma,
    // clamped to Table II's (1e2, 1e7).
    const auto& rho_b = out.variables[0].field.data;
    std::vector<float> temp(rho_b.size());
    Rng tn = rng.split();
    for (std::size_t i = 0; i < rho_b.size(); ++i) {
      const double ratio = static_cast<double>(rho_b[i]) / 80.0;
      const double t =
          1.2e4 * std::pow(std::max(ratio, 1e-6), 0.62) * std::exp(0.08 * tn.normal());
      temp[i] = static_cast<float>(std::clamp(t, 1e2, 1e7));
    }
    io::Variable v;
    v.field = Field(kNyxFieldNames[2], dims, std::move(temp));
    v.attributes["units"] = "K";
    v.attributes["range"] = "(1e2, 1e7)";
    out.variables.push_back(std::move(v));
  }

  // Velocities: large-scale flows (P(k)/k^2 weighting) plus a white-noise
  // component so the three components share characteristics ("velocity
  // fields have similar data characteristics, which is more random",
  // paper Section V-A).
  for (int axis = 0; axis < 3; ++axis) {
    Rng vr = rng.split();
    auto flow = gaussian_random_field(dims, vr, config.spectral_index, config.knee, -1.0);
    Rng wn = rng.split();
    std::vector<float> vel(flow.size());
    const double s = config.velocity_sigma;
    const double noise = config.velocity_noise;
    for (std::size_t i = 0; i < flow.size(); ++i) {
      const double v = s * ((1.0 - noise) * flow[i] + noise * wn.normal());
      vel[i] = static_cast<float>(std::clamp(v, -1e8, 1e8));
    }
    io::Variable v;
    v.field = Field(kNyxFieldNames[3 + axis], dims, std::move(vel));
    v.attributes["units"] = "cm/s";
    v.attributes["range"] = "(-1e8, 1e8)";
    out.variables.push_back(std::move(v));
  }
  return out;
}

}  // namespace cosmo
