#include "cosmo/nyx_sequence.hpp"

#include <cmath>

#include "common/str.hpp"

namespace cosmo {

std::vector<Field> generate_nyx_delta_sequence(const NyxSequenceConfig& config) {
  // Two independent unit-variance realizations span a plane in field space;
  // rotating within the plane keeps unit variance while decorrelating
  // smoothly: corr(t1, t2) = cos(theta * |t1 - t2|).
  NyxConfig a_cfg = config.base;
  NyxConfig b_cfg = config.base;
  b_cfg.seed = config.base.seed ^ 0x9E3779B97F4A7C15ull;
  const Field a = generate_nyx_delta(a_cfg);
  const Field b = generate_nyx_delta(b_cfg);

  std::vector<Field> out;
  out.reserve(config.steps);
  for (std::size_t t = 0; t < config.steps; ++t) {
    const double theta = config.rotation_per_step * static_cast<double>(t);
    const double growth = 1.0 + config.growth_per_step * static_cast<double>(t);
    const float ca = static_cast<float>(growth * std::cos(theta));
    const float cb = static_cast<float>(growth * std::sin(theta));
    Field frame(strprintf("delta_t%03zu", t), a.dims);
    for (std::size_t i = 0; i < frame.data.size(); ++i) {
      frame.data[i] = ca * a.data[i] + cb * b.data[i];
    }
    out.push_back(std::move(frame));
  }
  return out;
}

std::vector<Field> generate_nyx_density_sequence(const NyxSequenceConfig& config) {
  std::vector<Field> deltas = generate_nyx_delta_sequence(config);
  const double sigma = config.base.sigma_delta;
  std::vector<Field> out;
  out.reserve(deltas.size());
  for (std::size_t t = 0; t < deltas.size(); ++t) {
    Field rho(strprintf("baryon_density_t%03zu", t), deltas[t].dims);
    for (std::size_t i = 0; i < rho.data.size(); ++i) {
      const double v = 80.0 * std::exp(sigma * deltas[t].data[i] - sigma * sigma / 2.0);
      rho.data[i] = static_cast<float>(std::min(v, 1e5));
    }
    out.push_back(std::move(rho));
  }
  return out;
}

}  // namespace cosmo
