#include "cosmo/dataset_info.hpp"

#include <cmath>

#include "common/str.hpp"

namespace cosmo {

DatasetInfo hacc_paper_info() {
  DatasetInfo d;
  d.name = "HACC";
  d.dimension = "1,073,726,359";
  d.size = "38 GB";
  d.fields = {
      {"Position (x, y, z)", "(0, 256)"},
      {"Velocity (vx, vy, vz)", "(-1e4, 1e4)"},
  };
  return d;
}

DatasetInfo nyx_paper_info() {
  DatasetInfo d;
  d.name = "Nyx";
  d.dimension = "512x512x512";
  d.size = "6.6 GB";
  d.fields = {
      {"Baryon Density", "(0, 1e5)"},
      {"Dark Matter Density", "(0, 1e4)"},
      {"Temperature", "(1e2, 1e7)"},
      {"Velocity (vx, vy, vz)", "(-1e8, 1e8)"},
  };
  return d;
}

DatasetInfo describe(const io::Container& c, const std::string& name) {
  DatasetInfo d;
  d.name = name;
  if (!c.variables.empty()) {
    d.dimension = c.variables.front().field.dims.to_string();
  }
  d.size = human_bytes(c.payload_bytes());
  for (const auto& v : c.variables) {
    const auto [lo, hi] = value_range(v.field.view());
    d.fields.push_back(
        {v.field.name, strprintf("(%.3g, %.3g)", static_cast<double>(lo),
                                 static_cast<double>(hi))});
  }
  return d;
}

std::string format_table(const std::vector<DatasetInfo>& rows) {
  std::string out;
  out += strprintf("%-10s %-18s %-8s %-28s %s\n", "Dataset", "Dimension", "Size",
                   "Field", "Value Range");
  out += std::string(90, '-') + "\n";
  for (const auto& d : rows) {
    bool first = true;
    for (const auto& f : d.fields) {
      out += strprintf("%-10s %-18s %-8s %-28s %s\n", first ? d.name.c_str() : "",
                       first ? d.dimension.c_str() : "", first ? d.size.c_str() : "",
                       f.name.c_str(), f.range.c_str());
      first = false;
    }
  }
  return out;
}

}  // namespace cosmo
