/// \file hacc_synth.hpp
/// \brief Synthetic HACC particle snapshot generator.
///
/// Stands in for the ANL "Small Outer Rim timestep 499" dataset (paper
/// Table II): six 1-D single-precision arrays holding particle position
/// (x, y, z) in (0, 256) and velocity (vx, vy, vz) in (-1e4, 1e4).
///
/// Particles are drawn from a population of NFW-like halos whose masses
/// follow a truncated power-law mass function, plus a uniform background.
/// That preserves exactly what the paper's metrics see:
///  - Friends-of-Friends finds a halo mass spectrum spanning decades
///    (Fig. 6's x-axis), sensitive to position perturbations;
///  - positions are locally smooth (clustered) while velocities carry a
///    large virial-dispersion component, reproducing the
///    position-vs-velocity compressibility contrast (Fig. 4b).
#pragma once

#include <cstdint>
#include <vector>

#include "io/container.hpp"

namespace cosmo {

struct HaccConfig {
  std::size_t particles = 1000000;  ///< paper: 1,073,726,359
  std::uint64_t seed = 7;
  double box = 256.0;               ///< box edge, positions in (0, box)
  double clustered_fraction = 0.65; ///< particles bound in halos
  std::size_t halo_count = 600;     ///< number of halos
  double mass_slope = 2.0;          ///< dn/dM ~ M^-slope
  std::size_t min_halo_particles = 20;
  double velocity_scale = 1.4e3;    ///< bulk-flow sigma per axis
};

/// Field names in canonical order.
inline constexpr const char* kHaccFieldNames[6] = {"x", "y", "z", "vx", "vy", "vz"};

/// Generates the six-array snapshot as a GenericIO-lite container.
io::Container generate_hacc(const HaccConfig& config);

/// Ground truth about the generated halos (for halo-finder validation).
struct HaloTruth {
  double cx, cy, cz;     ///< halo center
  std::size_t particles; ///< members generated
};

/// Same as generate_hacc() but also reports the generated halo truth.
io::Container generate_hacc(const HaccConfig& config, std::vector<HaloTruth>* truth);

}  // namespace cosmo
