#include "cosmo/hacc_synth.hpp"

#include <algorithm>
#include <cmath>

#include "random/rng.hpp"

namespace cosmo {

namespace {

/// Samples a halo "mass" (particle count weight) from the truncated
/// power law dn/dM ~ M^-slope on [1, mmax] via inverse CDF.
double sample_mass(Rng& rng, double slope, double mmax) {
  const double u = rng.uniform();
  if (std::fabs(slope - 1.0) < 1e-9) {
    return std::exp(u * std::log(mmax));
  }
  const double a = 1.0 - slope;
  // CDF(m) = (m^a - 1) / (mmax^a - 1)
  return std::pow(1.0 + u * (std::pow(mmax, a) - 1.0), 1.0 / a);
}

/// Radial distance sampled from a truncated NFW-like profile
/// rho(r) ~ 1 / (r/rs (1 + r/rs)^2), via rejection on [0, rmax].
double sample_nfw_radius(Rng& rng, double rs, double rmax) {
  // Density of radius (including the r^2 shell factor):
  // p(r) ~ r / (1 + r/rs)^2, whose max over [0, rmax] is at r = rs.
  const double pmax = rs / 4.0;
  for (int tries = 0; tries < 256; ++tries) {
    const double r = rng.uniform() * rmax;
    const double p = r / ((1.0 + r / rs) * (1.0 + r / rs));
    if (rng.uniform() * pmax <= p) return r;
  }
  return rng.uniform() * rmax;  // numerically safe fallback
}

double wrap(double v, double box) {
  v = std::fmod(v, box);
  return v < 0.0 ? v + box : v;
}

}  // namespace

io::Container generate_hacc(const HaccConfig& config) {
  return generate_hacc(config, nullptr);
}

io::Container generate_hacc(const HaccConfig& config, std::vector<HaloTruth>* truth) {
  require(config.particles >= 1000, "generate_hacc: need at least 1000 particles");
  require(config.halo_count >= 1, "generate_hacc: need at least one halo");
  Rng rng(config.seed);

  const std::size_t n = config.particles;
  std::vector<float> pos[3];
  std::vector<float> vel[3];
  for (int a = 0; a < 3; ++a) {
    pos[a].reserve(n);
    vel[a].reserve(n);
  }

  const auto n_clustered =
      static_cast<std::size_t>(config.clustered_fraction * static_cast<double>(n));

  // Distribute clustered particles over halos proportionally to mass.
  std::vector<double> masses(config.halo_count);
  double mass_total = 0.0;
  for (auto& m : masses) {
    m = sample_mass(rng, config.mass_slope, 2e4);
    mass_total += m;
  }

  if (truth) truth->clear();
  std::size_t emitted = 0;
  for (std::size_t h = 0; h < config.halo_count && emitted < n_clustered; ++h) {
    std::size_t members = static_cast<std::size_t>(
        masses[h] / mass_total * static_cast<double>(n_clustered));
    members = std::max(members, config.min_halo_particles);
    members = std::min(members, n_clustered - emitted);
    if (members == 0) break;

    const double cx = rng.uniform() * config.box;
    const double cy = rng.uniform() * config.box;
    const double cz = rng.uniform() * config.box;
    // Halo size grows with mass^(1/3); scale radius ~ 1/8 of the halo.
    const double rvir = 0.35 * std::cbrt(masses[h] / 100.0);
    const double rs = rvir / 4.0;
    // Virial velocity dispersion ~ sqrt(M / R).
    const double sigma_v = 60.0 * std::sqrt(masses[h] / rvir) / 10.0;
    const double bvx = rng.normal(0.0, config.velocity_scale);
    const double bvy = rng.normal(0.0, config.velocity_scale);
    const double bvz = rng.normal(0.0, config.velocity_scale);

    for (std::size_t p = 0; p < members; ++p) {
      const double r = sample_nfw_radius(rng, rs, rvir);
      // Isotropic direction.
      const double costh = rng.uniform(-1.0, 1.0);
      const double sinth = std::sqrt(std::max(0.0, 1.0 - costh * costh));
      const double phi = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
      pos[0].push_back(static_cast<float>(wrap(cx + r * sinth * std::cos(phi), config.box)));
      pos[1].push_back(static_cast<float>(wrap(cy + r * sinth * std::sin(phi), config.box)));
      pos[2].push_back(static_cast<float>(wrap(cz + r * costh, config.box)));
      for (int a = 0; a < 3; ++a) {
        const double bulk = a == 0 ? bvx : a == 1 ? bvy : bvz;
        const double v = std::clamp(bulk + rng.normal(0.0, sigma_v), -1e4, 1e4);
        vel[a].push_back(static_cast<float>(v));
      }
    }
    emitted += members;
    if (truth) truth->push_back({cx, cy, cz, members});
  }

  // Uniform background with Hubble-like smooth flow + small dispersion.
  while (emitted < n) {
    const double x = rng.uniform() * config.box;
    const double y = rng.uniform() * config.box;
    const double z = rng.uniform() * config.box;
    pos[0].push_back(static_cast<float>(x));
    pos[1].push_back(static_cast<float>(y));
    pos[2].push_back(static_cast<float>(z));
    const double c = config.box / 2.0;
    const double hubble = 6.0;  // outward flow per unit distance
    const double hv[3] = {hubble * (x - c), hubble * (y - c), hubble * (z - c)};
    for (int a = 0; a < 3; ++a) {
      const double v = std::clamp(hv[a] + rng.normal(0.0, config.velocity_scale * 0.4),
                                  -1e4, 1e4);
      vel[a].push_back(static_cast<float>(v));
    }
    ++emitted;
  }

  io::Container out;
  for (int a = 0; a < 3; ++a) {
    io::Variable v;
    v.field = Field(kHaccFieldNames[a], Dims::d1(n), std::move(pos[a]));
    v.attributes["units"] = "Mpc/h";
    v.attributes["range"] = "(0, 256)";
    out.variables.push_back(std::move(v));
  }
  for (int a = 0; a < 3; ++a) {
    io::Variable v;
    v.field = Field(kHaccFieldNames[3 + a], Dims::d1(n), std::move(vel[a]));
    v.attributes["units"] = "km/s";
    v.attributes["range"] = "(-1e4, 1e4)";
    out.variables.push_back(std::move(v));
  }
  return out;
}

}  // namespace cosmo
