/// \file nyx_sequence.hpp
/// \brief Temporally coherent snapshot sequences.
///
/// The paper's motivation (Section I) contrasts lossy compression with
/// decimation — "stores one snapshot every other time step ... can lead to
/// a loss of valuable simulation information" — and its related work
/// discusses time-based compression of adjacent snapshots (Li et al. [41]).
/// Both need a sequence of snapshots with realistic temporal coherence.
/// This generator evolves the Gaussian random field smoothly in time
/// (slow rotation between two fixed realizations plus linear growth), so
/// adjacent snapshots are strongly correlated while distant ones decorrelate.
#pragma once

#include <vector>

#include "cosmo/nyx_synth.hpp"

namespace cosmo {

struct NyxSequenceConfig {
  NyxConfig base;             ///< spatial configuration
  std::size_t steps = 8;      ///< number of snapshots
  double rotation_per_step = 0.08;  ///< radians of field-space rotation per step
  double growth_per_step = 0.02;    ///< linear amplitude growth per step
};

/// Generates `steps` baryon-density snapshots (lognormal fields, identical
/// value-range handling to generate_nyx()). Adjacent snapshots have
/// correlation cos(rotation_per_step) in the underlying Gaussian field.
std::vector<Field> generate_nyx_density_sequence(const NyxSequenceConfig& config);

/// The raw (Gaussian) delta sequence, for tests that need the linear field.
std::vector<Field> generate_nyx_delta_sequence(const NyxSequenceConfig& config);

}  // namespace cosmo
