/// \file nyx_synth.hpp
/// \brief Synthetic Nyx snapshot generator.
///
/// Stands in for the LBNL Nyx dataset (paper Table II): six 3-D
/// single-precision fields — baryon density, dark matter density,
/// temperature, and velocity (vx, vy, vz) — on a single-level grid.
/// Fields are built from Gaussian random fields with a LambdaCDM-like
/// power spectrum (generated with our own FFT), log-normal-transformed
/// for densities so the value ranges and dynamic ranges match Table II:
///   rho_b in (0, 1e5), rho_dm in (0, 1e4), T in (1e2, 1e7),
///   velocities in (-1e8, 1e8).
/// The known input spectrum is what makes the Fig. 5 power-spectrum-ratio
/// analysis meaningful on synthetic data.
#pragma once

#include <cstdint>

#include "io/container.hpp"

namespace cosmo {

struct NyxConfig {
  std::size_t dim = 128;        ///< grid edge (power of two; paper: 512)
  std::uint64_t seed = 42;
  double box_mpc = 28.0;        ///< comoving box edge, used for k units
  double spectral_index = 1.0;  ///< primordial tilt n_s
  double knee = 8.0;            ///< spectrum turnover (grid frequency units)
  double sigma_delta = 1.1;     ///< log-density fluctuation amplitude
  double velocity_sigma = 9.0e6;///< cm/s, gives the (-1e8, 1e8) range
  double velocity_noise = 0.15; ///< white-noise fraction in velocities
};

/// Field names in canonical order.
inline constexpr const char* kNyxFieldNames[6] = {
    "baryon_density", "dark_matter_density", "temperature",
    "velocity_x",     "velocity_y",          "velocity_z",
};

/// Generates the six-field snapshot as an HDF5-lite container.
io::Container generate_nyx(const NyxConfig& config);

/// Generates just the density contrast delta(x) (zero mean), exposed for
/// power-spectrum tests against the known input spectrum.
Field generate_nyx_delta(const NyxConfig& config);

}  // namespace cosmo
