/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation (xoshiro256**).
///
/// The synthetic HACC/Nyx generators must be reproducible across runs and
/// platforms, so we use a fixed, self-implemented generator rather than
/// std::mt19937 + distribution objects (whose outputs are not guaranteed
/// identical across standard library implementations).
#pragma once

#include <cstdint>

namespace cosmo {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// reimplemented here; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached pair).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Exponential with the given rate parameter lambda.
  double exponential(double lambda);

  /// Creates an independent stream (jump-equivalent: reseeds from this
  /// stream's output), for per-thread generators.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace cosmo
