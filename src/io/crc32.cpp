#include "io/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

// The 8-byte kernel folds the first four input bytes into the running CRC
// with a single 32-bit XOR, which is only equivalent to four byte-wise folds
// when the load is little-endian.
static_assert(std::endian::native == std::endian::little,
              "crc32 slice-by-8 assumes a little-endian host");

namespace cosmo {

namespace {

/// Slice-by-8 tables: tables[0] is the classic byte-at-a-time table;
/// tables[k][b] advances a CRC whose next k+1 bytes start with b through
/// k extra zero bytes, so eight table lookups consume eight input bytes at
/// once. Checksums are identical to the byte-at-a-time loop (verified by
/// CodecFastPaths.Crc32MatchesByteAtATimeReference).
std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      tables[k][i] = tables[0][tables[k - 1][i] & 0xFFu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const auto tables = make_tables();
  const auto& t = tables;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  while (size >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][(c >> 24) & 0xFFu] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][(hi >> 24) & 0xFFu];
    p += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace cosmo
