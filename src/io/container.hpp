/// \file container.hpp
/// \brief Self-describing multi-variable binary containers.
///
/// Two on-disk dialects of one layout, mirroring the paper's dataset
/// formats (Section IV-B2):
///  - GenericIO-lite ("GIO1"): HACC-style — named 1-D float variables with
///    per-variable CRC-32, like ANL's GenericIO blocks.
///  - HDF5-lite ("H5L1"): Nyx-style — named N-D float datasets with string
///    attributes (e.g. units), like a single-group HDF5 file.
///
/// Layout: [magic u32][var count u32] then per variable
/// [name len u32][name][nx,ny,nz u64][attr count u32][(key,value) strings]
/// [crc32 u32][float32 data]. All little-endian.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/field.hpp"

namespace cosmo::io {

/// One stored variable: a Field plus free-form string attributes.
struct Variable {
  Field field;
  std::map<std::string, std::string> attributes;
};

/// An in-memory container ready to be saved or just loaded.
struct Container {
  std::vector<Variable> variables;

  /// Returns the variable with the given field name; throws if absent.
  [[nodiscard]] const Variable& find(const std::string& name) const;

  /// Total payload bytes across all variables.
  [[nodiscard]] std::size_t payload_bytes() const;
};

/// Container dialect tag.
enum class Dialect { kGenericIo, kHdf5Lite };

/// Writes \p c to \p path; throws IoError on failure.
void save(const Container& c, const std::string& path, Dialect dialect);

/// Reads a container, verifying magic and per-variable CRCs.
Container load(const std::string& path);

/// The dialect a file at \p path was saved with (reads the magic only).
Dialect probe_dialect(const std::string& path);

}  // namespace cosmo::io
