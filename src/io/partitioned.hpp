/// \file partitioned.hpp
/// \brief Per-rank partitioned container files, GenericIO-style.
///
/// HACC "runs with 8x8x4 MPI processes, and each MPI process saves its own
/// portion of the dataset" (paper Section IV-B4). This module writes one
/// GenericIO-lite file per rank plus a small JSON manifest, and reassembles
/// the global snapshot on load — preserving the per-rank file-order
/// semantics the dimension-conversion argument relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/container.hpp"

namespace cosmo::io {

/// Writes `parts.size()` rank files (<stem>.rank<N>.gio) and a manifest
/// (<stem>.manifest.json). \p parts holds, per rank, the particle indices
/// it owns; every variable of \p snapshot is split accordingly (1-D
/// variables only).
void save_partitioned(const Container& snapshot, const std::string& stem,
                      const std::vector<std::vector<std::uint32_t>>& parts);

/// Loads a partitioned dataset. Variables are reassembled in rank order
/// (rank 0's particles first) — the on-disk order of a real multi-rank run.
/// The original global indices are returned via \p global_index when
/// non-null (global_index[i] = index in the pre-split snapshot).
Container load_partitioned(const std::string& stem,
                           std::vector<std::uint32_t>* global_index = nullptr);

/// Number of ranks recorded in a manifest.
std::size_t partition_rank_count(const std::string& stem);

}  // namespace cosmo::io
