#include "io/partitioned.hpp"

#include <fstream>

#include "common/str.hpp"
#include "json/json.hpp"

namespace cosmo::io {

namespace {

std::string rank_path(const std::string& stem, std::size_t rank) {
  return strprintf("%s.rank%04zu.gio", stem.c_str(), rank);
}

std::string manifest_path(const std::string& stem) { return stem + ".manifest.json"; }

}  // namespace

void save_partitioned(const Container& snapshot, const std::string& stem,
                      const std::vector<std::vector<std::uint32_t>>& parts) {
  require(!parts.empty(), "save_partitioned: no ranks");
  for (const auto& v : snapshot.variables) {
    require(v.field.dims.rank() == 1,
            "save_partitioned: only 1-D (particle) variables supported");
  }

  for (std::size_t r = 0; r < parts.size(); ++r) {
    Container rank_container;
    for (const auto& v : snapshot.variables) {
      Variable rv;
      rv.attributes = v.attributes;
      rv.field = Field(v.field.name, Dims::d1(parts[r].size()));
      for (std::size_t i = 0; i < parts[r].size(); ++i) {
        rv.field.data[i] = v.field.data[parts[r][i]];
      }
      rank_container.variables.push_back(std::move(rv));
    }
    // A per-rank index variable records the global particle ids.
    {
      Variable idx;
      idx.field = Field("_global_index", Dims::d1(parts[r].size()));
      for (std::size_t i = 0; i < parts[r].size(); ++i) {
        idx.field.data[i] = static_cast<float>(parts[r][i]);
      }
      rank_container.variables.push_back(std::move(idx));
    }
    save(rank_container, rank_path(stem, r), Dialect::kGenericIo);
  }

  json::Object manifest;
  manifest["ranks"] = json::Value(parts.size());
  manifest["stem"] = json::Value(stem);
  json::Array variables;
  for (const auto& v : snapshot.variables) variables.push_back(json::Value(v.field.name));
  manifest["variables"] = json::Value(std::move(variables));
  std::ofstream out(manifest_path(stem), std::ios::trunc);
  if (!out) throw IoError("save_partitioned: cannot write manifest for " + stem);
  out << json::Value(manifest).dump(2) << "\n";
}

std::size_t partition_rank_count(const std::string& stem) {
  const json::Value manifest = json::parse_file(manifest_path(stem));
  return static_cast<std::size_t>(manifest.at("ranks").as_number());
}

Container load_partitioned(const std::string& stem,
                           std::vector<std::uint32_t>* global_index) {
  const json::Value manifest = json::parse_file(manifest_path(stem));
  const auto ranks = static_cast<std::size_t>(manifest.at("ranks").as_number());
  require_format(ranks >= 1, "load_partitioned: manifest has no ranks");

  Container out;
  if (global_index) global_index->clear();
  bool first = true;
  for (std::size_t r = 0; r < ranks; ++r) {
    const Container rank_container = load(rank_path(stem, r));
    if (first) {
      for (const auto& v : rank_container.variables) {
        if (v.field.name == "_global_index") continue;
        Variable empty;
        empty.field.name = v.field.name;
        empty.field.dims = Dims::d1(0);
        empty.attributes = v.attributes;
        out.variables.push_back(std::move(empty));
      }
      first = false;
    }
    for (auto& v : out.variables) {
      const auto& rv = rank_container.find(v.field.name);
      v.field.data.insert(v.field.data.end(), rv.field.data.begin(), rv.field.data.end());
    }
    if (global_index) {
      const auto& idx = rank_container.find("_global_index");
      for (const float g : idx.field.data) {
        global_index->push_back(static_cast<std::uint32_t>(g));
      }
    }
  }
  for (auto& v : out.variables) {
    v.field.dims = Dims::d1(v.field.data.size());
  }
  return out;
}

}  // namespace cosmo::io
