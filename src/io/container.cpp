#include "io/container.hpp"

#include <cstring>
#include <fstream>

#include "common/fault.hpp"
#include "common/str.hpp"
#include "io/crc32.hpp"

namespace cosmo::io {

namespace {

constexpr std::uint32_t kMagicGio = 0x47494F31;   // "GIO1"
constexpr std::uint32_t kMagicH5l = 0x48354C31;   // "H5L1"

void write_u32(std::ofstream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 4);
}

void write_u64(std::ofstream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 8);
}

void write_string(std::ofstream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint32_t read_u32(std::ifstream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  if (!in) throw FormatError("container: truncated file");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(std::ifstream& in) {
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  if (!in) throw FormatError("container: truncated file");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

}  // namespace

const Variable& Container::find(const std::string& name) const {
  for (const auto& v : variables) {
    if (v.field.name == name) return v;
  }
  throw InvalidArgument("container: no variable named '" + name + "'");
}

std::size_t Container::payload_bytes() const {
  std::size_t total = 0;
  for (const auto& v : variables) total += v.field.bytes();
  return total;
}

void save(const Container& c, const std::string& path, Dialect dialect) {
  if (auto* plan = fault::active()) plan->maybe_throw_io(path, "save");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("container: cannot open for writing: " + path);
  write_u32(out, dialect == Dialect::kGenericIo ? kMagicGio : kMagicH5l);
  write_u32(out, static_cast<std::uint32_t>(c.variables.size()));
  for (const auto& v : c.variables) {
    write_string(out, v.field.name);
    write_u64(out, v.field.dims.nx);
    write_u64(out, v.field.dims.ny);
    write_u64(out, v.field.dims.nz);
    write_u32(out, static_cast<std::uint32_t>(v.attributes.size()));
    for (const auto& [key, value] : v.attributes) {
      write_string(out, key);
      write_string(out, value);
    }
    const std::uint32_t crc = crc32(v.field.data.data(), v.field.bytes());
    write_u32(out, crc);
    out.write(reinterpret_cast<const char*>(v.field.data.data()),
              static_cast<std::streamsize>(v.field.bytes()));
  }
  if (!out) throw IoError("container: write failed: " + path);
}

Container load(const std::string& path) {
  if (auto* plan = fault::active()) plan->maybe_throw_io(path, "load");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("container: cannot open: " + path);

  // Every declared count and length below is validated against the bytes
  // that actually remain in the file before anything is allocated, so a
  // corrupted header fails with FormatError (naming the variable and byte
  // offset) instead of a multi-GB allocation.
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  auto offset = [&in]() { return static_cast<std::uint64_t>(in.tellg()); };
  auto remaining = [&]() { return file_size - offset(); };
  auto fail = [&](const std::string& var, const char* what) {
    throw FormatError(strprintf("container: %s (variable '%s', byte offset %llu of %llu)", what,
                                var.c_str(), static_cast<unsigned long long>(offset()),
                                static_cast<unsigned long long>(file_size)));
  };
  auto read_string_at = [&](const std::string& var, const char* what) {
    const std::uint32_t len = read_u32(in);
    if (len > (1u << 20)) fail(var, "implausible string length");
    if (len > remaining()) fail(var, what);
    std::string s(len, '\0');
    in.read(s.data(), len);
    if (!in) fail(var, what);
    return s;
  };

  const std::uint32_t magic = read_u32(in);
  require_format(magic == kMagicGio || magic == kMagicH5l, "container: bad magic");
  const std::uint32_t count = read_u32(in);
  // A variable costs at least 48 header bytes (name length, 3 extents,
  // attribute count, CRC) before any payload.
  if (count > (1u << 16) || count > remaining() / 48) {
    throw FormatError(strprintf("container: variable count %u exceeds file size %llu", count,
                                static_cast<unsigned long long>(file_size)));
  }
  Container c;
  c.variables.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Variable v;
    const std::string name = read_string_at(strprintf("#%u", i), "truncated variable name");
    Dims dims;
    dims.nx = read_u64(in);
    dims.ny = read_u64(in);
    dims.nz = read_u64(in);
    const std::size_t values = checked_stream_count(dims, "container");
    if (values > remaining() / sizeof(float)) fail(name, "variable extents exceed file size");
    const std::uint32_t attr_count = read_u32(in);
    // Each attribute is two length-prefixed strings: at least 8 bytes.
    if (attr_count > (1u << 12) || attr_count > remaining() / 8) {
      fail(name, "attribute count exceeds file size");
    }
    for (std::uint32_t a = 0; a < attr_count; ++a) {
      std::string key = read_string_at(name, "truncated attribute key");
      v.attributes[std::move(key)] = read_string_at(name, "truncated attribute value");
    }
    const std::uint32_t stored_crc = read_u32(in);
    if (values > remaining() / sizeof(float)) fail(name, "truncated variable data");
    v.field = Field(name, dims);
    in.read(reinterpret_cast<char*>(v.field.data.data()),
            static_cast<std::streamsize>(v.field.bytes()));
    if (!in) fail(name, "truncated variable data");
    const std::uint32_t actual_crc = crc32(v.field.data.data(), v.field.bytes());
    if (actual_crc != stored_crc) fail(name, "CRC mismatch");
    c.variables.push_back(std::move(v));
  }
  return c;
}

Dialect probe_dialect(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("container: cannot open: " + path);
  const std::uint32_t magic = read_u32(in);
  if (magic == kMagicGio) return Dialect::kGenericIo;
  if (magic == kMagicH5l) return Dialect::kHdf5Lite;
  throw FormatError("container: unknown magic");
}

}  // namespace cosmo::io
