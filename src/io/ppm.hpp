/// \file ppm.hpp
/// \brief PPM image output for field-slice visualization (paper Fig. 1).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/field.hpp"

namespace cosmo::io {

/// An 8-bit RGB raster.
struct Image {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> rgb;  ///< 3 * width * height bytes

  Image(std::size_t w, std::size_t h) : width(w), height(h), rgb(3 * w * h, 0) {}

  void set(std::size_t x, std::size_t y, std::uint8_t r, std::uint8_t g, std::uint8_t b);
};

/// Writes a binary PPM (P6) file.
void write_ppm(const Image& img, const std::string& path);

/// Renders the z = \p slice plane of a 3-D field with a log-scale viridis-like
/// colormap (density fields span orders of magnitude, cf. Fig. 1).
Image render_slice(const Field& field, std::size_t slice, bool log_scale = true);

}  // namespace cosmo::io
