#include "io/ppm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace cosmo::io {

void Image::set(std::size_t x, std::size_t y, std::uint8_t r, std::uint8_t g,
                std::uint8_t b) {
  const std::size_t o = 3 * (y * width + x);
  rgb[o] = r;
  rgb[o + 1] = g;
  rgb[o + 2] = b;
}

void write_ppm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("ppm: cannot open " + path);
  out << "P6\n" << img.width << " " << img.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.rgb.data()),
            static_cast<std::streamsize>(img.rgb.size()));
  if (!out) throw IoError("ppm: write failed " + path);
}

namespace {

/// Compact 5-stop approximation of the viridis colormap.
void viridis(double t, std::uint8_t& r, std::uint8_t& g, std::uint8_t& b) {
  struct Stop {
    double t;
    double r, g, b;
  };
  static const Stop stops[] = {
      {0.00, 68, 1, 84},  {0.25, 59, 82, 139}, {0.50, 33, 145, 140},
      {0.75, 94, 201, 98}, {1.00, 253, 231, 37},
  };
  t = std::clamp(t, 0.0, 1.0);
  for (std::size_t i = 1; i < std::size(stops); ++i) {
    if (t <= stops[i].t) {
      const auto& lo = stops[i - 1];
      const auto& hi = stops[i];
      const double u = (t - lo.t) / (hi.t - lo.t);
      r = static_cast<std::uint8_t>(lo.r + u * (hi.r - lo.r));
      g = static_cast<std::uint8_t>(lo.g + u * (hi.g - lo.g));
      b = static_cast<std::uint8_t>(lo.b + u * (hi.b - lo.b));
      return;
    }
  }
  r = 253;
  g = 231;
  b = 37;
}

}  // namespace

Image render_slice(const Field& field, std::size_t slice, bool log_scale) {
  require(field.dims.rank() >= 2, "render_slice: field must be 2-D or 3-D");
  require(slice < field.dims.nz, "render_slice: slice out of range");
  const std::size_t w = field.dims.nx;
  const std::size_t h = field.dims.ny;

  // Value range over the slice (log scale shifts negatives/zeros to a floor).
  double lo = 1e300, hi = -1e300;
  auto transform = [log_scale](double v) {
    return log_scale ? std::log10(std::max(v, 1e-12)) : v;
  };
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const double v = transform(field.data[field.dims.index(x, y, slice)]);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double span = hi > lo ? hi - lo : 1.0;

  Image img(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const double v = transform(field.data[field.dims.index(x, y, slice)]);
      std::uint8_t r, g, b;
      viridis((v - lo) / span, r, g, b);
      img.set(x, y, r, g, b);
    }
  }
  return img;
}

}  // namespace cosmo::io
