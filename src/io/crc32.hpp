/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3 polynomial) used by the container formats.
///
/// GenericIO protects every variable block with a CRC; our GenericIO-lite
/// container keeps that property so corrupted files fail loudly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cosmo {

/// CRC-32 of a byte range; \p seed allows incremental computation
/// (pass a previous result).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace cosmo
